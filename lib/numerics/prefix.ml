let exclusive_sums_into ~dst xs =
  let n = Array.length xs in
  if Array.length dst < n + 1 then
    invalid_arg "Prefix.exclusive_sums_into: dst too short";
  dst.(0) <- 0.0;
  for i = 0 to n - 1 do
    dst.(i + 1) <- dst.(i) +. xs.(i)
  done

let exclusive_sums xs =
  let dst = Array.make (Array.length xs + 1) 0.0 in
  exclusive_sums_into ~dst xs;
  dst

let suffix_sums_into ~dst xs =
  let n = Array.length xs in
  if Array.length dst < n + 1 then
    invalid_arg "Prefix.suffix_sums_into: dst too short";
  dst.(n) <- 0.0;
  for i = n - 1 downto 0 do
    dst.(i) <- xs.(i) +. dst.(i + 1)
  done

let suffix_sums xs =
  let dst = Array.make (Array.length xs + 1) 0.0 in
  suffix_sums_into ~dst xs;
  dst

let range_sum sums i j =
  if i < 0 || j > Array.length sums - 1 || i > j then
    invalid_arg "Prefix.range_sum: bad range";
  sums.(j) -. sums.(i)

let lower_bound ?(lo = 0) ?hi xs x =
  let hi = match hi with Some h -> h | None -> Array.length xs in
  if lo < 0 || hi > Array.length xs || lo > hi then
    invalid_arg "Prefix.lower_bound: bad range";
  (* invariant: xs.(i) < x for i < lo', and xs.(i) >= x for i >= hi' *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = lo + ((hi - lo) / 2) in
      if xs.(mid) < x then go (mid + 1) hi else go lo mid
  in
  go lo hi
