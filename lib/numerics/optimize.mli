(** Numerical optimization.

    The flow-volume-target method (§IV-A, Eq. 9) maximizes the Nash product
    over a box of flow allowances; we solve it with projected Nelder–Mead
    plus a coarse multistart grid.  One-dimensional routines support the
    cash-compensation method and unit tests. *)

val golden_section_max :
  ?tol:float -> (float -> float) -> float -> float -> float * float
(** [golden_section_max f a b] maximizes a unimodal [f] on [\[a, b\]];
    returns the maximizer and its value. Tolerance on the maximizer
    defaults to [1e-9]. *)

val grid_max :
  n:int -> (float -> float) -> float -> float -> float * float
(** [grid_max ~n f a b] evaluates [f] at [n + 1] equally spaced points and
    returns the best [(x, f x)]. @raise Invalid_argument if [n <= 0]. *)

type box = (float * float) array
(** Per-coordinate [(lo, hi)] bounds. *)

val project : box -> float array -> float array
(** Clamp a point into the box (fresh array). *)

val nelder_mead :
  ?max_iter:int ->
  ?tol:float ->
  f:(float array -> float) ->
  box:box ->
  start:float array ->
  unit ->
  float array * float
(** Maximize [f] over [box] with a Nelder–Mead simplex whose evaluations are
    projected into the box. Returns the best point and value found.
    Deterministic given [start]. *)

val multistart_nelder_mead :
  ?starts_per_dim:int ->
  ?max_iter:int ->
  f:(float array -> float) ->
  box:box ->
  unit ->
  float array * float
(** Run {!nelder_mead} from a coarse lattice of start points (corner,
    center, and per-axis midpoints; [starts_per_dim] controls the lattice
    resolution, default 3) and keep the best result. Suitable for the
    low-dimensional, mildly multi-modal Nash-product landscapes of Eq. 9. *)
