let trapezoid ~n f a b =
  if n <= 0 then invalid_arg "Integrate.trapezoid: n <= 0";
  let h = (b -. a) /. float_of_int n in
  let rec sum i acc =
    if i >= n then acc
    else sum (i + 1) (acc +. f (a +. (h *. float_of_int i)))
  in
  h *. ((0.5 *. (f a +. f b)) +. sum 1 0.0)

let simpson a b fa fm fb = (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb)

let adaptive_simpson ?(epsabs = 1e-9) ?(max_depth = 40) f a b =
  if a = b then 0.0
  else
    let sign, a, b = if a > b then (-1.0, b, a) else (1.0, a, b) in
    let rec go a b fa fm fb whole eps depth =
      let m = 0.5 *. (a +. b) in
      let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
      let flm = f lm and frm = f rm in
      let left = simpson a m fa flm fm in
      let right = simpson m b fm frm fb in
      let delta = left +. right -. whole in
      if depth <= 0 || Float.abs delta <= 15.0 *. eps then
        left +. right +. (delta /. 15.0)
      else
        go a m fa flm fm left (eps /. 2.0) (depth - 1)
        +. go m b fm frm fb right (eps /. 2.0) (depth - 1)
    in
    let fa = f a and fb = f b and fm = f (0.5 *. (a +. b)) in
    let whole = simpson a b fa fm fb in
    sign *. go a b fa fm fb whole epsabs max_depth

let grid_2d ~nx ~ny f (ax, bx) (ay, by) =
  if nx <= 0 || ny <= 0 then invalid_arg "Integrate.grid_2d";
  let hx = (bx -. ax) /. float_of_int nx in
  let hy = (by -. ay) /. float_of_int ny in
  let acc = ref 0.0 in
  for i = 0 to nx - 1 do
    let x = ax +. (hx *. (float_of_int i +. 0.5)) in
    for j = 0 to ny - 1 do
      let y = ay +. (hy *. (float_of_int j +. 0.5)) in
      acc := !acc +. f x y
    done
  done;
  !acc *. hx *. hy
