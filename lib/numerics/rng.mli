(** Deterministic, splittable pseudo-random number generator.

    The generator implements SplitMix64 (Steele, Lea, Flood; OOPSLA 2014).
    All experiments in this repository derive their randomness from an
    explicit [Rng.t] seeded with a constant, so every figure and test is
    reproducible bit-for-bit.  The generator is mutable; use {!split} or
    {!copy} to obtain independent streams for parallel sub-experiments. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. Two generators created from the same seed produce identical
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] draws uniformly from [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] draws uniformly from [\[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [{0, ..., bound - 1}].
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool
(** Fair coin flip. *)

val exponential : t -> float -> float
(** [exponential t rate] draws from Exp(rate). Requires [rate > 0]. *)

val gaussian : t -> float -> float -> float
(** [gaussian t mu sigma] draws from N(mu, sigma²) via Box–Muller. *)

val pareto : t -> float -> float -> float
(** [pareto t alpha x_min] draws from a Pareto distribution with shape
    [alpha] and scale [x_min]; used for heavy-tailed degree targets in the
    synthetic topology generator. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] returns [k] distinct elements of
    [arr] chosen uniformly. @raise Invalid_argument if [k > Array.length arr]. *)

val choose : t -> 'a array -> 'a
(** Uniformly chosen element. @raise Invalid_argument on an empty array. *)
