(** Probability distributions on the real line.

    The BOSCO mechanism (§V of the paper) manipulates utility distributions
    [U_Z(u)]: it samples choice sets from them, computes tail probabilities
    [P(σ_Y(u_Y) ≥ -v_X)] (Eq. 16), and integrates the Nash bargaining product
    against the joint distribution (Eq. 19).  This module provides the small
    algebra of distributions those computations need: density, CDF, quantile,
    sampling, and interval probabilities — all exact for the piecewise-
    analytic distributions used in the paper (uniform), and numeric for the
    rest. *)

type t
(** A univariate distribution with support [\[inf, sup\]] (either bound may
    be infinite). *)

val uniform : float -> float -> t
(** [uniform lo hi] is the continuous uniform distribution on [\[lo, hi\]].
    @raise Invalid_argument if [lo >= hi]. *)

val triangular : float -> float -> float -> t
(** [triangular lo mode hi]. @raise Invalid_argument unless
    [lo <= mode <= hi] and [lo < hi]. *)

val exponential : float -> t
(** [exponential rate] on [\[0, ∞)]. @raise Invalid_argument if [rate <= 0]. *)

val gaussian : float -> float -> t
(** [gaussian mu sigma]. @raise Invalid_argument if [sigma <= 0]. *)

val shifted : t -> float -> t
(** [shifted d c] is the law of [X + c] for [X ~ d]. *)

val scaled : t -> float -> t
(** [scaled d k] is the law of [k·X] for [X ~ d] and [k > 0].
    @raise Invalid_argument if [k <= 0]. *)

val support : t -> float * float
(** Lower and upper bound of the support (possibly infinite). *)

val pdf : t -> float -> float
(** Probability density at a point. *)

val cdf : t -> float -> float
(** [cdf d x] is [P(X <= x)]. *)

val quantile : t -> float -> float
(** [quantile d p] is the smallest [x] with [cdf d x >= p], for
    [p] in [\[0, 1\]]; computed by bisection for distributions without a
    closed form. @raise Invalid_argument if [p] is outside [\[0,1\]]. *)

val mean : t -> float
(** Expected value. *)

val sample : t -> Rng.t -> float
(** Draw one value (inverse-transform sampling). *)

val prob_interval : t -> float -> float -> float
(** [prob_interval d a b] is [P(a < X <= b)] ([= cdf b - cdf a]); 0 when
    [b <= a]. *)

val prob_ge : t -> float -> float
(** [prob_ge d x] is [P(X >= x)]; for the continuous distributions here this
    equals [1 - cdf d x]. *)

val expectation : ?epsabs:float -> t -> (float -> float) -> float
(** [expectation d f] computes [E(f(X))] by adaptive Simpson quadrature over
    the support (truncated at ±10 standard-deviation-equivalents for
    unbounded supports). *)

val partial_expectation : ?epsabs:float -> t -> float -> float -> float
(** [partial_expectation d a b] is [∫_a^b x · pdf(x) dx] (0 when [b <= a]);
    the building block for piecewise-linear payoff integrals such as the
    expected Nash bargaining product. *)
