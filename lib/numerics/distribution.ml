type t = {
  inf : float;
  sup : float;
  pdf : float -> float;
  cdf : float -> float;
  quantile_exact : (float -> float) option;
  mean : float;
}

let support d = (d.inf, d.sup)
let pdf d x = d.pdf x
let cdf d x = d.cdf x
let mean d = d.mean

let uniform lo hi =
  if lo >= hi then invalid_arg "Distribution.uniform: lo >= hi";
  let w = hi -. lo in
  {
    inf = lo;
    sup = hi;
    pdf = (fun x -> if x < lo || x > hi then 0.0 else 1.0 /. w);
    cdf =
      (fun x ->
        if x <= lo then 0.0 else if x >= hi then 1.0 else (x -. lo) /. w);
    quantile_exact = Some (fun p -> lo +. (p *. w));
    mean = 0.5 *. (lo +. hi);
  }

let triangular lo mode hi =
  if not (lo <= mode && mode <= hi && lo < hi) then
    invalid_arg "Distribution.triangular";
  let w = hi -. lo in
  let pdf x =
    if x < lo || x > hi then 0.0
    else if x < mode then 2.0 *. (x -. lo) /. (w *. (mode -. lo))
    else if x > mode then 2.0 *. (hi -. x) /. (w *. (hi -. mode))
    else 2.0 /. w
  in
  let cdf x =
    if x <= lo then 0.0
    else if x >= hi then 1.0
    else if x <= mode then (x -. lo) ** 2.0 /. (w *. (mode -. lo))
    else 1.0 -. (((hi -. x) ** 2.0) /. (w *. (hi -. mode)))
  in
  let quantile p =
    let pc = (mode -. lo) /. w in
    if p <= pc then lo +. sqrt (p *. w *. (mode -. lo))
    else hi -. sqrt ((1.0 -. p) *. w *. (hi -. mode))
  in
  {
    inf = lo;
    sup = hi;
    pdf;
    cdf;
    quantile_exact = Some quantile;
    mean = (lo +. mode +. hi) /. 3.0;
  }

let exponential rate =
  if rate <= 0.0 then invalid_arg "Distribution.exponential";
  {
    inf = 0.0;
    sup = infinity;
    pdf = (fun x -> if x < 0.0 then 0.0 else rate *. exp (-.rate *. x));
    cdf = (fun x -> if x <= 0.0 then 0.0 else 1.0 -. exp (-.rate *. x));
    quantile_exact = Some (fun p -> -.log (1.0 -. p) /. rate);
    mean = 1.0 /. rate;
  }

(* Abramowitz–Stegun 7.1.26 rational approximation of erf; max abs error
   1.5e-7, ample for the CDF comparisons done in tests. *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429 in
  let poly = ((((((a5 *. t) +. a4) *. t) +. a3) *. t +. a2) *. t +. a1) in
  sign *. (1.0 -. (poly *. t *. exp (-.x *. x)))

let gaussian mu sigma =
  if sigma <= 0.0 then invalid_arg "Distribution.gaussian";
  let norm = 1.0 /. (sigma *. sqrt (2.0 *. Float.pi)) in
  {
    inf = neg_infinity;
    sup = infinity;
    pdf =
      (fun x ->
        let z = (x -. mu) /. sigma in
        norm *. exp (-0.5 *. z *. z));
    cdf = (fun x -> 0.5 *. (1.0 +. erf ((x -. mu) /. (sigma *. sqrt 2.0))));
    quantile_exact = None;
    mean = mu;
  }

let shifted d c =
  {
    inf = d.inf +. c;
    sup = d.sup +. c;
    pdf = (fun x -> d.pdf (x -. c));
    cdf = (fun x -> d.cdf (x -. c));
    quantile_exact =
      Option.map (fun q -> fun p -> q p +. c) d.quantile_exact;
    mean = d.mean +. c;
  }

let scaled d k =
  if k <= 0.0 then invalid_arg "Distribution.scaled";
  {
    inf = d.inf *. k;
    sup = d.sup *. k;
    pdf = (fun x -> d.pdf (x /. k) /. k);
    cdf = (fun x -> d.cdf (x /. k));
    quantile_exact = Option.map (fun q -> fun p -> k *. q p) d.quantile_exact;
    mean = d.mean *. k;
  }

(* Finite brackets for bisection / quadrature on unbounded supports. *)
let finite_bounds d =
  let lo = if Float.is_finite d.inf then d.inf else d.mean -. 40.0
  and hi = if Float.is_finite d.sup then d.sup else d.mean +. 40.0 in
  (lo, hi)

let quantile d p =
  if p < 0.0 || p > 1.0 then invalid_arg "Distribution.quantile";
  match d.quantile_exact with
  | Some q -> q p
  | None ->
      let lo, hi = finite_bounds d in
      let rec bisect lo hi n =
        if n = 0 then 0.5 *. (lo +. hi)
        else
          let mid = 0.5 *. (lo +. hi) in
          if d.cdf mid >= p then bisect lo mid (n - 1)
          else bisect mid hi (n - 1)
      in
      bisect lo hi 80

let sample d rng = quantile d (Rng.float rng)

let prob_interval d a b = if b <= a then 0.0 else d.cdf b -. d.cdf a
let prob_ge d x = 1.0 -. d.cdf x

let expectation ?(epsabs = 1e-9) d f =
  let lo, hi = finite_bounds d in
  let g x = f x *. d.pdf x in
  Integrate.adaptive_simpson ~epsabs g lo hi

let partial_expectation ?(epsabs = 1e-10) d a b =
  if b <= a then 0.0
  else
    let lo, hi = finite_bounds d in
    let a = Float.max a lo and b = Float.min b hi in
    if b <= a then 0.0
    else Integrate.adaptive_simpson ~epsabs (fun x -> x *. d.pdf x) a b
