(** Descriptive statistics and empirical distribution utilities.

    The path-diversity evaluation (§VI) reports its results as empirical
    CDFs over sampled ASes and AS pairs (Figs. 3–6); this module provides
    the summaries those figures are built from. *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on an empty array. *)

val variance : float array -> float
(** Population variance. @raise Invalid_argument on an empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val min_max : float array -> float * float
(** Smallest and largest element. @raise Invalid_argument on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]], linear interpolation between
    order statistics (the common "type 7" estimate). Does not mutate [xs].
    Sorting uses [Float.compare], so the result is deterministic.
    @raise Invalid_argument on an empty array, out-of-range [p], or NaN
    input. *)

val median : float array -> float
(** [median xs = percentile xs 50.0]. *)

type cdf
(** An empirical CDF: a step function built from a sample. *)

val ecdf : float array -> cdf
(** Build the empirical CDF of a sample.
    @raise Invalid_argument on an empty array or NaN input. *)

val cdf_at : cdf -> float -> float
(** [cdf_at c x] is the fraction of sample points [<= x]. *)

val cdf_points : cdf -> (float * float) list
(** The knots of the step function as [(value, cumulative fraction)] pairs,
    ascending in value; suitable for plotting a figure series. *)

val survival_at : cdf -> float -> float
(** [survival_at c x = 1 - cdf_at c x]: the fraction of points [> x]. The
    paper reads its CDF figures this way ("20% of ASes have more than
    45,000 paths"). *)

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] partitions [\[min, max\]] into [bins] equal cells
    and returns [(lo, hi, count)] per cell; the last cell is right-closed.
    @raise Invalid_argument if [bins <= 0] or [xs] is empty. *)

val fraction_where : ('a -> bool) -> 'a array -> float
(** Fraction of elements satisfying the predicate (0 on empty input). *)
