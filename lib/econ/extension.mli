(** Extension of agreement paths (§III-B3).

    A concluded mutuality-based agreement gives a party new path segments
    (e.g. D gains D–E–B).  Those segments can themselves become the matter
    of further agreements: D may extend them to its customers, or re-offer
    them to another peer in a secondary agreement — provided the secondary
    volumes still fit within the flow-volume targets of the base agreement
    (the interdependence the paper points out).

    This module tracks segment grants with volume budgets and validates
    secondary agreements against them. *)

open Pan_topology

type segment = { via : Asn.t; dest : Asn.t }
(** The path segment [holder - via - dest] from the holder's perspective. *)

type grant = {
  holder : Asn.t;  (** the party that gained the segment *)
  segment : segment;
  allowance : float;  (** flow-volume target from the base agreement *)
  committed : float;  (** volume already promised to third parties *)
}

val of_flow_volume_result :
  Traffic_model.scenario -> Flow_volume_opt.result -> grant list
(** The segments each party gained from a concluded flow-volume agreement,
    with their targets as budgets (empty if the agreement was not
    concluded). Nothing is committed initially. *)

val remaining : grant -> float

val commit : grant -> float -> (grant, string) result
(** Reserve part of the budget for a secondary agreement; fails when the
    remaining allowance is insufficient or the volume is negative. *)

val release : grant -> float -> grant
(** Return previously committed volume (clamped at zero). *)

type secondary = {
  grantor : Asn.t;  (** the holder re-offering the segment *)
  beneficiary : Asn.t;  (** the third party gaining access *)
  through : segment;  (** the re-offered segment *)
  volume : float;
}

val validate_secondary :
  Graph.t -> grant list -> secondary -> (grant list, string) result
(** Check a secondary agreement against the holder's grants: the grantor
    must hold the segment, must be adjacent to the beneficiary, and the
    volume must fit the remaining allowance.  On success, returns the
    grant list with the volume committed. *)

val extended_path : secondary -> Asn.t list
(** The length-4 AS path the secondary agreement creates:
    [beneficiary - grantor - via - dest]. *)

val chained_stats : Graph.t -> Asn.t -> int * Asn.Set.t
(** Path-diversity view of full chaining: the number of length-4 paths
    [x - y - z - w] an AS gains when each MA partner [y] re-offers the
    segments it gained from its own MAs (MA(x,y) and MA(y,z) concluded,
    [w] a provider or peer of [z]), and the set of distinct destinations
    [w].  Destinations that are already direct neighbors of [x], or [x]
    itself, are excluded. *)

val shift_allowance :
  from_:grant -> to_:grant -> float -> (grant * grant, string) result
(** [shift_allowance ~from_ ~to_ v] moves [v] units of uncommitted
    allowance from one grant to another — the bookkeeping behind
    volume-denominated settlements ({!Pan_bosco.Volume_terms}).  Fails if
    [v] is negative or exceeds the source's remaining allowance. *)
