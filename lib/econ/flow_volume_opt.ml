open Pan_numerics

type result = {
  choices : Traffic_model.choice list;
  u_x : float;
  u_y : float;
  nash : float;
  concluded : bool;
}

let choices_of_vector demands v =
  List.mapi
    (fun i _ ->
      Traffic_model.{ reroute = v.(2 * i); attracted = v.((2 * i) + 1) })
    demands

(* Exact penalty: feasible points score their Nash product, infeasible
   points score the (negative) worst utility, which is continuous across
   the boundary and pushes the simplex back into the feasible region. *)
let objective scenario demands v =
  let choices = choices_of_vector demands v in
  match Traffic_model.utilities scenario choices with
  | Error _ -> neg_infinity
  | Ok (ux, uy) ->
      let worst = Float.min ux uy in
      if worst < 0.0 then worst else ux *. uy

let optimize_with ~objective scenario ?starts_per_dim ?max_iter () =
  let demands = Traffic_model.demands scenario in
  if demands = [] then
    let u_x, u_y =
      Traffic_model.utilities_exn scenario (Traffic_model.zero_choice scenario)
    in
    {
      choices = [];
      u_x;
      u_y;
      nash = Nash.product u_x u_y;
      concluded = false;
    }
  else begin
    let box =
      Array.of_list
        (List.concat_map
           (fun (d : Traffic_model.segment_demand) ->
             [ (0.0, d.reroutable); (0.0, d.attracted_max) ])
           demands)
    in
    let best, _ =
      Optimize.multistart_nelder_mead ?starts_per_dim ?max_iter ~f:objective
        ~box ()
    in
    let choices = choices_of_vector demands best in
    let u_x, u_y = Traffic_model.utilities_exn scenario choices in
    let total_allowance =
      List.fold_left
        (fun acc c -> acc +. Traffic_model.allowance c)
        0.0 choices
    in
    (* an agreement whose optimal targets are (numerically) zero "cannot
       be concluded" (§IV-C); 1e-6 separates real volumes from optimizer
       dust *)
    let concluded = u_x >= -1e-9 && u_y >= -1e-9 && total_allowance > 1e-6 in
    { choices; u_x; u_y; nash = Nash.product u_x u_y; concluded }
  end

let optimize_compiled ?workspace ?starts_per_dim ?max_iter model =
  let workspace =
    match workspace with Some ws -> ws | None -> Econ_workspace.create ()
  in
  optimize_with
    ~objective:(Model_fast.nash_objective ~workspace model)
    (Model_fast.scenario model) ?starts_per_dim ?max_iter ()

let optimize ?(kernel = Model_fast.Fast) ?workspace ?starts_per_dim ?max_iter
    scenario =
  match kernel with
  | Model_fast.Reference ->
      let demands = Traffic_model.demands scenario in
      optimize_with
        ~objective:(objective scenario demands)
        scenario ?starts_per_dim ?max_iter ()
  | Model_fast.Fast ->
      optimize_compiled ?workspace ?starts_per_dim ?max_iter
        (Model_fast.compile scenario)

let pp fmt r =
  Format.fprintf fmt "%s: u_x=%g u_y=%g nash=%g targets=[%a]"
    (if r.concluded then "concluded" else "not concluded")
    r.u_x r.u_y r.nash
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (c : Traffic_model.choice) ->
         Format.fprintf fmt "r=%g a=%g" c.reroute c.attracted))
    r.choices
