open Pan_topology

type t = float Asn.Map.t

(* Real AS numbers are below 2^32; stubs live above that bound. *)
let stub_offset = 0x1_0000_0000

let stub x = Asn.of_int (stub_offset + Asn.to_int x)
let is_stub x = Asn.to_int x >= stub_offset

let empty = Asn.Map.empty

let of_list l =
  List.fold_left
    (fun acc (y, f) ->
      if f < 0.0 then invalid_arg "Flows.of_list: negative flow";
      if Asn.Map.mem y acc then invalid_arg "Flows.of_list: duplicate neighbor";
      Asn.Map.add y f acc)
    Asn.Map.empty l

let flow_to t y = match Asn.Map.find_opt y t with Some f -> f | None -> 0.0

let total t = Asn.Map.fold (fun _ f acc -> acc +. f) t 0.0 /. 2.0

let set t y f =
  if f < 0.0 then invalid_arg "Flows.set: negative flow";
  if f = 0.0 then Asn.Map.remove y t else Asn.Map.add y f t

let add t y delta = set t y (Float.max 0.0 (flow_to t y +. delta))

let neighbors t =
  Asn.Map.fold (fun y f acc -> if f > 0.0 then y :: acc else acc) t []
  |> List.rev

let fold f t init = Asn.Map.fold f t init

(* SoA view for the fast kernels: parallel (neighbor, volume) arrays in
   ascending ASN order, the same order every Map fold above uses, so
   array sums reproduce map sums bit for bit. *)
let to_sorted_arrays t =
  let n = Asn.Map.cardinal t in
  let keys = Array.make n (Asn.of_int 0) and vals = Array.make n 0.0 in
  let i = ref 0 in
  Asn.Map.iter
    (fun y f ->
      keys.(!i) <- y;
      vals.(!i) <- f;
      incr i)
    t;
  (keys, vals)

let of_sorted_arrays keys vals =
  let n = Array.length keys in
  if Array.length vals <> n then
    invalid_arg "Flows.of_sorted_arrays: length mismatch";
  let t = ref Asn.Map.empty in
  for i = 0 to n - 1 do
    if vals.(i) < 0.0 then invalid_arg "Flows.of_sorted_arrays: negative flow";
    if vals.(i) <> 0.0 then t := Asn.Map.add keys.(i) vals.(i) !t
  done;
  !t

let pp fmt t =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    (fun fmt (y, f) -> Format.fprintf fmt "%a:%g" Asn.pp y f)
    fmt (Asn.Map.bindings t)
