(** Monitoring and enforcement of flow-volume targets (§IV-C).

    The paper argues that flow-volume agreements are more predictable than
    cash compensation because the parties can {e enforce} the agreed
    volume limits.  This module is that enforcement runtime: it meters the
    traffic each party sends over the agreement's path segments in
    charging epochs, reports target violations at epoch close, and prices
    overages with a pricing function (turning persistent violations into a
    paid-peering-like settlement instead of a broken agreement). *)

open Pan_topology

type key = { beneficiary : Asn.t; via : Asn.t; dest : Asn.t }
(** A monitored path segment, from the metering party's perspective. *)

type t
(** Mutable meter state for one agreement. *)

val create : targets:(key * float) list -> t
(** @raise Invalid_argument on a negative target or duplicate key. *)

val of_flow_volume :
  Traffic_model.scenario -> Flow_volume_opt.result -> t
(** Derive the meters from a concluded optimization result.
    @raise Invalid_argument if the agreement was not concluded. *)

val record : t -> key -> float -> unit
(** Meter traffic observed on a segment within the current epoch.
    Unknown segments are metered too (target 0: any use is a violation).
    @raise Invalid_argument on negative volume. *)

val usage : t -> key -> float
(** Traffic metered on the segment in the current epoch. *)

type violation = { key : key; used : float; target : float }

val current_violations : t -> violation list
(** Segments currently above target, worst overage first. *)

val close_epoch : t -> violation list
(** Report the epoch's violations and reset all meters. *)

val epochs_closed : t -> int

val overage_charge : Pricing.t -> violation -> float
(** Price the overage volume [used − target] with the given pricing
    function (e.g. the transit price the volume would have cost). *)

val pp_violation : Format.formatter -> violation -> unit
