(** Agreement optimization via flow-volume targets (§IV-A, Eq. 9).

    Solves
    {v max   u_D(f, Δf) · u_E(f, Δf)
      s.t.  u_D ≥ 0, u_E ≥ 0                       (I)
            Δf_P within the agreement allowance     (II)
            Δf_P ≤ Δf^max_P                         (III) v}
    over per-segment rerouted and attracted volumes.  Constraints (II) and
    (III) are box constraints on the decision variables; constraint (I) is
    handled with an exact penalty, so the projected Nelder–Mead multistart
    of {!Pan_numerics.Optimize} applies.  The resulting volumes are the
    flow-volume targets written into the agreement. *)

type result = {
  choices : Traffic_model.choice list;
      (** optimal per-segment volumes, in demand order *)
  u_x : float;
  u_y : float;
  nash : float;  (** the maximized Nash product *)
  concluded : bool;
      (** both utilities non-negative and at least one target positive; a
          solution with all-zero targets means the agreement "cannot be
          concluded" (§IV-C) *)
}

val optimize :
  ?kernel:Model_fast.kernel ->
  ?workspace:Econ_workspace.t ->
  ?starts_per_dim:int ->
  ?max_iter:int ->
  Traffic_model.scenario ->
  result
(** [kernel] (default [Fast]) selects the objective evaluated inside the
    Nelder–Mead loop: the {!Model_fast} flat kernel or the original
    map-based reference.  The two are bit-identical by construction (see
    {!Model_fast}), so the result does not depend on the choice; the
    reference is retained as the equivalence oracle.  The reported
    utilities are always re-evaluated through {!Traffic_model}. *)

val optimize_compiled :
  ?workspace:Econ_workspace.t ->
  ?starts_per_dim:int ->
  ?max_iter:int ->
  Model_fast.t ->
  result
(** Fast-kernel optimization of an already-compiled scenario (shares the
    compilation with other per-scenario work, e.g. {!Negotiation}). *)

val pp : Format.formatter -> result -> unit
