(** Internal-cost functions [i_X(f_X)] (§III-A): non-negative and
    monotonically increasing in the total flow through the AS. *)

type t

val zero : t

val linear : rate:float -> t
(** [i(f) = rate · f]. @raise Invalid_argument if [rate < 0]. *)

val affine : base:float -> rate:float -> t
(** [i(f) = base + rate · f]: fixed operating cost plus marginal cost.
    @raise Invalid_argument on negative parameters. *)

val power : alpha:float -> beta:float -> t
(** [i(f) = α · f^β] with [α ≥ 0], [β ≥ 0]; superlinear [β] models
    congestion-driven operating cost. *)

val piecewise_linear : (float * float) list -> t
(** [piecewise_linear \[(c0, r0); (c1, r1); ...\]] is linear with rate [r0]
    up to capacity [c0], then rate [r1] up to [c1], etc.; the last rate
    extends to infinity.  Breakpoints must be positive and strictly
    increasing, rates non-negative.  Models stepwise capacity upgrades.
    @raise Invalid_argument on violated preconditions or an empty list. *)

val eval : t -> float -> float
(** @raise Invalid_argument on a negative flow. *)

val pp : Format.formatter -> t -> unit
