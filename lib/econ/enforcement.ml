open Pan_topology

type key = { beneficiary : Asn.t; via : Asn.t; dest : Asn.t }

type t = {
  targets : (key, float) Hashtbl.t;
  meters : (key, float) Hashtbl.t;
  mutable epochs : int;
}

let create ~targets =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (key, target) ->
      if target < 0.0 then invalid_arg "Enforcement.create: negative target";
      if Hashtbl.mem table key then
        invalid_arg "Enforcement.create: duplicate segment";
      Hashtbl.replace table key target)
    targets;
  { targets = table; meters = Hashtbl.create 16; epochs = 0 }

let of_flow_volume scenario (result : Flow_volume_opt.result) =
  if not result.Flow_volume_opt.concluded then
    invalid_arg "Enforcement.of_flow_volume: agreement not concluded";
  let targets =
    List.map2
      (fun (d : Traffic_model.segment_demand) choice ->
        ( {
            beneficiary = d.Traffic_model.beneficiary;
            via = d.Traffic_model.transit;
            dest = d.Traffic_model.dest;
          },
          Traffic_model.allowance choice ))
      (Traffic_model.demands scenario)
      result.Flow_volume_opt.choices
  in
  create ~targets

let record t key volume =
  if volume < 0.0 then invalid_arg "Enforcement.record: negative volume";
  let current =
    match Hashtbl.find_opt t.meters key with Some v -> v | None -> 0.0
  in
  Hashtbl.replace t.meters key (current +. volume)

let usage t key =
  match Hashtbl.find_opt t.meters key with Some v -> v | None -> 0.0

type violation = { key : key; used : float; target : float }

let target_of t key =
  match Hashtbl.find_opt t.targets key with Some v -> v | None -> 0.0

let current_violations t =
  Hashtbl.fold
    (fun key used acc ->
      let target = target_of t key in
      if used > target +. 1e-12 then { key; used; target } :: acc else acc)
    t.meters []
  |> List.sort (fun v1 v2 ->
         compare (v2.used -. v2.target) (v1.used -. v1.target))

let close_epoch t =
  let violations = current_violations t in
  Hashtbl.reset t.meters;
  t.epochs <- t.epochs + 1;
  violations

let epochs_closed t = t.epochs

let overage_charge pricing v =
  Pricing.charge pricing (Float.max 0.0 (v.used -. v.target))

let pp_violation fmt v =
  Format.fprintf fmt "%a-%a-%a: used %g of %g" Asn.pp v.key.beneficiary
    Asn.pp v.key.via Asn.pp v.key.dest v.used v.target
