type comparison = {
  flow_volume : Flow_volume_opt.result;
  cash : Cash_opt.result;
}

let compare_methods ?(kernel = Model_fast.Fast) ?workspace ?starts_per_dim
    scenario =
  match kernel with
  | Model_fast.Reference ->
      {
        flow_volume =
          Flow_volume_opt.optimize ~kernel ?starts_per_dim scenario;
        cash = Cash_opt.optimize ~kernel scenario;
      }
  | Model_fast.Fast ->
      (* Compile once; both methods evaluate on the same flat model. *)
      let model = Model_fast.compile scenario in
      {
        flow_volume =
          Flow_volume_opt.optimize_compiled ?workspace ?starts_per_dim model;
        cash = Cash_opt.optimize_compiled ?workspace model;
      }

let cash_joint c =
  if c.cash.Cash_opt.concluded then
    c.cash.Cash_opt.u_x_after +. c.cash.Cash_opt.u_y_after
  else 0.0

let flow_volume_joint c =
  if c.flow_volume.Flow_volume_opt.concluded then
    c.flow_volume.Flow_volume_opt.u_x +. c.flow_volume.Flow_volume_opt.u_y
  else 0.0

let cash_only c =
  c.cash.Cash_opt.concluded && not c.flow_volume.Flow_volume_opt.concluded

let pp fmt c =
  Format.fprintf fmt "@[<v>flow-volume: %a@ cash:        %a@]"
    Flow_volume_opt.pp c.flow_volume Cash_opt.pp c.cash
