type comparison = {
  flow_volume : Flow_volume_opt.result;
  cash : Cash_opt.result;
}

let compare_methods ?starts_per_dim scenario =
  {
    flow_volume = Flow_volume_opt.optimize ?starts_per_dim scenario;
    cash = Cash_opt.optimize scenario;
  }

let cash_joint c =
  if c.cash.Cash_opt.concluded then
    c.cash.Cash_opt.u_x_after +. c.cash.Cash_opt.u_y_after
  else 0.0

let flow_volume_joint c =
  if c.flow_volume.Flow_volume_opt.concluded then
    c.flow_volume.Flow_volume_opt.u_x +. c.flow_volume.Flow_volume_opt.u_y
  else 0.0

let cash_only c =
  c.cash.Cash_opt.concluded && not c.flow_volume.Flow_volume_opt.concluded

let pp fmt c =
  Format.fprintf fmt "@[<v>flow-volume: %a@ cash:        %a@]"
    Flow_volume_opt.pp c.flow_volume Cash_opt.pp c.cash
