(** Revenue/cost decomposition of agreement utilities (Eq. 4, 5, 7a, 7b).

    The paper derives agreement utility as [u = Δr − Δc] where the cost
    change splits into an internal-cost change and a provider-charge
    change.  This module computes that decomposition for any scenario and
    choice, which is how the worked examples of §III-B1 (classic
    peering) and §III-B2 (mutuality) are presented, and what an AS
    operator would actually look at when judging an agreement. *)

open Pan_topology

type party_delta = {
  party : Asn.t;
  d_revenue : float;  (** [Δr] (Eq. 4 / 7a): customer-revenue change *)
  d_internal : float;  (** [i(f⁽ᵃ⁾) − i(f)]: internal-cost change *)
  d_provider : float;  (** provider-charge change (the [p_AD] terms) *)
  d_cost : float;  (** [Δc = d_internal + d_provider] (Eq. 5 / 7b) *)
  utility : float;  (** [u = Δr − Δc] (Eq. 3) *)
}

val of_choices :
  Traffic_model.scenario ->
  Traffic_model.choice list ->
  (party_delta * party_delta, string) result
(** Decompose both parties' agreement utilities at the given per-segment
    volumes (in agreement order). *)

val of_full : Traffic_model.scenario -> party_delta * party_delta
(** Decomposition at the full forecast volumes.
    @raise Invalid_argument if the scenario's own full choice is somehow
    invalid (cannot happen for scenarios built by {!Traffic_model}). *)

val pp : Format.formatter -> party_delta -> unit
