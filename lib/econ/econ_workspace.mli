(** Reusable scratch buffers for the fast econ kernels ({!Model_fast}).

    Same discipline as [Pan_bosco.Workspace]: buffers grow geometrically
    and are never shrunk, so a workspace threaded through an optimizer
    loop allocates only on the first few evaluations.  A workspace is not
    thread-safe; give each domain its own. *)

type t

val create : unit -> t

val flow_scratch : t -> n_x:int -> n_y:int -> float array * float array
(** Per-party flow-slot buffers with at least the requested lengths. *)

val batch_scratch : t -> int -> float array * float array
(** Paired utility buffers for batch evaluation. *)
