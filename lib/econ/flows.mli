(** Per-AS traffic distributions (the vector [f_X] of §III-A).

    [f_XY] is the share of the flow through AS [X] that also flows directly
    to or from neighbor [Y]; customer end-hosts of [X] appear as a virtual
    stub neighbor [Γ_X] ({!stub}).  Every unit of flow through a transit AS
    crosses two neighbor links, so the total flow [f_X] is half the sum of
    the neighbor flows. *)

open Pan_topology

type t
(** An immutable flow distribution. Neighbor flows are non-negative. *)

val stub : Asn.t -> Asn.t
(** [stub x] is the virtual stub AS [Γ_x] representing [x]'s customer
    end-hosts. Stub numbers live in a reserved range disjoint from real
    32-bit AS numbers. *)

val is_stub : Asn.t -> bool

val empty : t

val of_list : (Asn.t * float) list -> t
(** @raise Invalid_argument on a negative flow or duplicate neighbor. *)

val flow_to : t -> Asn.t -> float
(** [f_XY]; 0 for unlisted neighbors. *)

val total : t -> float
(** [f_X = (Σ_Y f_XY) / 2]. *)

val set : t -> Asn.t -> float -> t
(** Replace a neighbor flow. @raise Invalid_argument if negative. *)

val add : t -> Asn.t -> float -> t
(** Add a (possibly negative) delta to a neighbor flow, clamping at 0. *)

val neighbors : t -> Asn.t list
(** Neighbors with non-zero flow, ascending. *)

val fold : (Asn.t -> float -> 'a -> 'a) -> t -> 'a -> 'a

val to_sorted_arrays : t -> Asn.t array * float array
(** Structure-of-arrays view: parallel (neighbor, volume) arrays in
    ascending ASN order — the iteration order of {!fold} and {!total}, so
    summing the volume array left to right reproduces {!total}'s sum bit
    for bit.  Listed zero flows (allowed by {!of_list}) are included. *)

val of_sorted_arrays : Asn.t array -> float array -> t
(** Rebuild a distribution from parallel arrays; zero entries are dropped
    (as {!set} would).  Keys need not be sorted or unique — later entries
    win.  @raise Invalid_argument on length mismatch or a negative flow. *)

val pp : Format.formatter -> t -> unit
