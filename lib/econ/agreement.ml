open Pan_topology

type grant = {
  providers : Asn.Set.t;
  peers : Asn.Set.t;
  customers : Asn.Set.t;
}

let empty_grant =
  { providers = Asn.Set.empty; peers = Asn.Set.empty; customers = Asn.Set.empty }

let grant_all g = Asn.Set.union g.providers (Asn.Set.union g.peers g.customers)

type t = { x : Asn.t; y : Asn.t; x_grant : grant; y_grant : grant }

let check_grant g party grant =
  let sub name offered actual =
    if not (Asn.Set.subset offered actual) then
      Error
        (Printf.sprintf "AS%d offers %s it does not have" (Asn.to_int party)
           name)
    else Ok ()
  in
  match sub "providers" grant.providers (Graph.providers g party) with
  | Error _ as e -> e
  | Ok () -> (
      match sub "peers" grant.peers (Graph.peers g party) with
      | Error _ as e -> e
      | Ok () -> sub "customers" grant.customers (Graph.customers g party))

let make g ~x ~y ~x_grant ~y_grant =
  if Asn.equal x y then Error "agreement parties must differ"
  else
    match (check_grant g x x_grant, check_grant g y y_grant) with
    | Error e, _ | _, Error e -> Error e
    | Ok (), Ok () -> Ok { x; y; x_grant; y_grant }

let make_exn g ~x ~y ~x_grant ~y_grant =
  match make g ~x ~y ~x_grant ~y_grant with
  | Ok t -> t
  | Error msg -> invalid_arg ("Agreement.make_exn: " ^ msg)

let parties t = (t.x, t.y)

let counterparty t p =
  if Asn.equal p t.x then t.y
  else if Asn.equal p t.y then t.x
  else invalid_arg "Agreement.counterparty: not a party"

let grant_of t p =
  if Asn.equal p t.x then t.x_grant
  else if Asn.equal p t.y then t.y_grant
  else invalid_arg "Agreement.grant_of: not a party"

let accessible t ~to_ = grant_all (grant_of t (counterparty t to_))

let violates_grc _g t =
  let nonempty g =
    not (Asn.Set.is_empty g.providers && Asn.Set.is_empty g.peers)
  in
  nonempty t.x_grant || nonempty t.y_grant

let classic_peering g x y =
  let grant_for p =
    { empty_grant with customers = Graph.customers g p }
  in
  make_exn g ~x ~y ~x_grant:(grant_for x) ~y_grant:(grant_for y)

let mutuality g x y =
  (match Graph.relationship g x y with
  | Some Graph.Peer -> ()
  | _ -> invalid_arg "Agreement.mutuality: parties are not peers");
  let grant_for p other =
    {
      empty_grant with
      providers = Asn.Set.diff (Graph.providers g p) (Graph.customers g other);
      peers =
        Asn.Set.remove other
          (Asn.Set.diff (Graph.peers g p) (Graph.customers g other));
    }
  in
  make_exn g ~x ~y ~x_grant:(grant_for x y) ~y_grant:(grant_for y x)

let paper_example g =
  let a c = Gen.fig1_asn c in
  make_exn g ~x:(a 'D') ~y:(a 'E')
    ~x_grant:{ empty_grant with providers = Asn.Set.singleton (a 'A') }
    ~y_grant:
      {
        empty_grant with
        providers = Asn.Set.singleton (a 'B');
        peers = Asn.Set.singleton (a 'F');
      }

let pp fmt t =
  let pp_set fmt s =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
      Asn.pp fmt (Asn.Set.elements s)
  in
  let pp_side fmt (p, g) =
    Format.fprintf fmt "%a(↑{%a}, →{%a}, ↓{%a})" Asn.pp p pp_set g.providers
      pp_set g.peers pp_set g.customers
  in
  Format.fprintf fmt "[%a; %a]" pp_side (t.x, t.x_grant) pp_side
    (t.y, t.y_grant)
