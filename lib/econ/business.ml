open Pan_topology

type t = {
  asn : Asn.t;
  internal_cost : Cost.t;
  provider_prices : Pricing.t Asn.Map.t;
  customer_prices : Pricing.t Asn.Map.t;
}

let to_map name l =
  List.fold_left
    (fun acc (y, p) ->
      if Asn.Map.mem y acc then
        invalid_arg (Printf.sprintf "Business.create: duplicate %s" name);
      Asn.Map.add y p acc)
    Asn.Map.empty l

let create ~asn ?(internal_cost = Cost.zero) ?(provider_prices = [])
    ?(customer_prices = []) () =
  let providers = to_map "provider" provider_prices in
  let customers = to_map "customer" customer_prices in
  Asn.Map.iter
    (fun y _ ->
      if Asn.Map.mem y customers then
        invalid_arg "Business.create: AS is both provider and customer")
    providers;
  { asn; internal_cost; provider_prices = providers; customer_prices = customers }

let asn t = t.asn

let with_customer t y p =
  { t with customer_prices = Asn.Map.add y p t.customer_prices }

let with_provider t y p =
  { t with provider_prices = Asn.Map.add y p t.provider_prices }

let with_internal_cost t c = { t with internal_cost = c }

let revenue t flows =
  Asn.Map.fold
    (fun y pricing acc -> acc +. Pricing.charge pricing (Flows.flow_to flows y))
    t.customer_prices 0.0

let cost t flows =
  let provider_charges =
    Asn.Map.fold
      (fun y pricing acc ->
        acc +. Pricing.charge pricing (Flows.flow_to flows y))
      t.provider_prices 0.0
  in
  Cost.eval t.internal_cost (Flows.total flows) +. provider_charges

let utility t flows = revenue t flows -. cost t flows

let providers t = List.map fst (Asn.Map.bindings t.provider_prices)
let customers t = List.map fst (Asn.Map.bindings t.customer_prices)

let internal_cost t = t.internal_cost
let provider_pricing t = Asn.Map.bindings t.provider_prices
let customer_pricing t = Asn.Map.bindings t.customer_prices

let of_graph ?default_transit ?default_internal ?stub_price g x =
  let transit =
    match default_transit with
    | Some p -> p
    | None -> Pricing.per_usage ~unit_price:1.0
  in
  let internal =
    match default_internal with Some c -> c | None -> Cost.linear ~rate:0.1
  in
  let stub = match stub_price with Some p -> p | None -> transit in
  let provider_prices =
    Asn.Set.fold (fun y acc -> (y, transit) :: acc) (Graph.providers g x) []
  in
  let customer_prices =
    Asn.Set.fold (fun y acc -> (y, transit) :: acc) (Graph.customers g x) []
  in
  let customer_prices = (Flows.stub x, stub) :: customer_prices in
  create ~asn:x ~internal_cost:internal ~provider_prices ~customer_prices ()

let internal_cost_at t flows = Cost.eval t.internal_cost (Flows.total flows)

let provider_charges t flows =
  Asn.Map.fold
    (fun y pricing acc -> acc +. Pricing.charge pricing (Flows.flow_to flows y))
    t.provider_prices 0.0
