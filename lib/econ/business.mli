(** AS business calculation (§III-A, Eq. 1).

    A business profile fixes, for one AS [X], the pricing functions of the
    provider links it pays ([p_YX] for [Y ∈ π(X)]), the pricing functions
    of the customer links it charges ([p_XY] for [Y ∈ γ(X)], including the
    virtual end-host stub [Γ_X]) and its internal-cost function [i_X].

    Given a traffic distribution [f_X], the utility (profit) is
    {v U_X(f_X) = r_X(f_X) − c_X(f_X)
       r_X = Σ_{Y ∈ γ(X)} p_XY(f_XY)
       c_X = i_X(f_X) + Σ_{Y ∈ π(X)} p_YX(f_XY) v} *)

open Pan_topology

type t

val create :
  asn:Asn.t ->
  ?internal_cost:Cost.t ->
  ?provider_prices:(Asn.t * Pricing.t) list ->
  ?customer_prices:(Asn.t * Pricing.t) list ->
  unit ->
  t
(** [internal_cost] defaults to {!Cost.zero}. Neighbors missing from both
    lists (e.g. peers) generate and incur no charges.
    @raise Invalid_argument if some AS appears in both lists or twice in
    one. *)

val asn : t -> Asn.t

val with_customer : t -> Asn.t -> Pricing.t -> t
(** Add or replace a customer pricing function. *)

val with_provider : t -> Asn.t -> Pricing.t -> t
val with_internal_cost : t -> Cost.t -> t

val revenue : t -> Flows.t -> float  (** Eq. 1a *)

val cost : t -> Flows.t -> float  (** Eq. 1b *)

val utility : t -> Flows.t -> float
(** [revenue - cost]. *)

val providers : t -> Asn.t list
val customers : t -> Asn.t list

val of_graph :
  ?default_transit:Pricing.t ->
  ?default_internal:Cost.t ->
  ?stub_price:Pricing.t ->
  Graph.t ->
  Asn.t ->
  t
(** Derive a profile from a topology with uniform defaults: every provider
    and customer link priced with [default_transit] (default: per-usage at
    unit price 1.0), internal cost [default_internal] (default: linear at
    rate 0.1), and the virtual end-host stub priced with [stub_price]
    (default: same as transit). *)

val internal_cost_at : t -> Flows.t -> float
(** The internal-cost component [i_X(f_X)] of Eq. 1b alone. *)

val provider_charges : t -> Flows.t -> float
(** The provider-charge component [Σ_{Y ∈ π(X)} p_YX(f_XY)] of Eq. 1b
    alone. *)

val internal_cost : t -> Cost.t
(** The internal-cost function [i_X] itself, for kernels that evaluate it
    on precomputed totals. *)

val provider_pricing : t -> (Asn.t * Pricing.t) list
(** Provider pricing functions in ascending ASN order — the fold order of
    {!cost}, so kernels iterating this list reproduce its charge sum. *)

val customer_pricing : t -> (Asn.t * Pricing.t) list
(** Customer pricing functions in ascending ASN order ({!revenue}'s fold
    order). *)
