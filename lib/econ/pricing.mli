(** Pricing functions on provider–customer links (§III-A).

    Every provider–customer link carries a pricing function
    [p(f) = α · f^β] with [α, β ≥ 0], where [f] is the charged flow volume
    (median, average or 95th-percentile — the model is agnostic):

    - [β = 0]: flat-rate pricing with fee [α];
    - [β = 1]: pay-per-usage with unit cost [α];
    - [β > 1]: superlinear (congestion) pricing.

    Peering links are settlement-free; paid peering is modelled as a
    provider–customer link. *)

type t

val make : alpha:float -> beta:float -> t
(** @raise Invalid_argument if [alpha < 0] or [beta < 0]. *)

val flat_rate : fee:float -> t
(** [make ~alpha:fee ~beta:0.]. *)

val per_usage : unit_price:float -> t
(** [make ~alpha:unit_price ~beta:1.]. *)

val congestion : alpha:float -> beta:float -> t
(** Superlinear pricing. @raise Invalid_argument if [beta <= 1]. *)

val free : t
(** The zero pricing function (settlement-free). *)

val alpha : t -> float
val beta : t -> float

val charge : t -> float -> float
(** [charge p f] is the amount of money owed for flow volume [f].
    @raise Invalid_argument if [f < 0]. *)

val marginal : t -> float -> float
(** Derivative [dp/df] at [f]; for [β = 0] this is 0 everywhere. *)

val is_flat_rate : t -> bool
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
