(** Agreement optimization via cash compensation (§IV-B, Eq. 10).

    Volumes are not limited: both parties are expected to use the new
    segments at the forecast maximum, and the party that benefits more
    compensates the other with the Nash-bargaining transfer of Eq. 11.
    A solution exists iff the joint utility is non-negative. *)

type result = {
  u_x : float;  (** party x's pre-transfer agreement utility *)
  u_y : float;
  transfer : float;  (** [Π_{X→Y}]; negative means y pays x; 0 if not concluded *)
  u_x_after : float;  (** after-transfer utility; 0 if not concluded *)
  u_y_after : float;
  concluded : bool;
}

val optimize :
  ?kernel:Model_fast.kernel ->
  ?workspace:Econ_workspace.t ->
  Traffic_model.scenario ->
  result
(** Estimate utilities at {!Traffic_model.full_choice} and settle with the
    Nash transfer.  [kernel] (default [Fast]) picks the utility evaluator;
    both kernels produce identical results (see {!Model_fast}). *)

val optimize_at :
  ?kernel:Model_fast.kernel ->
  ?workspace:Econ_workspace.t ->
  Traffic_model.scenario ->
  Traffic_model.choice list ->
  result
(** Same, with an explicit expected-volume forecast. *)

val optimize_compiled : ?workspace:Econ_workspace.t -> Model_fast.t -> result
(** {!optimize} on an already-compiled scenario. *)

val optimize_at_compiled :
  ?workspace:Econ_workspace.t ->
  Model_fast.t ->
  Traffic_model.choice list ->
  result

val pp : Format.formatter -> result -> unit
