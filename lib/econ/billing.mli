(** Billing conventions for flow volumes (§III-A).

    The model's pricing functions apply to "the flow volume [f_ℓ] on link
    [ℓ] … interpreted as is appropriate for the pricing function, e.g., as
    the median, average, or 95th percentile of traffic volume over a given
    time period".  This module implements that interpretation layer: a
    meter accumulates per-interval volume samples within a billing period,
    and a convention reduces them to the billed volume handed to
    {!Pricing.charge}.  The industry-standard burstable-billing rule is
    {!P95}. *)

type convention =
  | Median
  | Mean
  | P95  (** standard burstable ("95th percentile") billing *)
  | Max

type meter

val create_meter : unit -> meter

val sample : meter -> float -> unit
(** Record one measurement interval's volume.
    @raise Invalid_argument on a negative volume. *)

val sample_count : meter -> int

val billed_volume : convention -> meter -> float
(** The billed volume for the period so far; 0 with no samples. *)

val charge : convention -> meter -> Pricing.t -> float
(** [Pricing.charge] applied to the billed volume. *)

val reset : meter -> unit
(** Start a new billing period. *)

val pp_convention : Format.formatter -> convention -> unit
