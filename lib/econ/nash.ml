let product u_x u_y = if u_x < 0.0 || u_y < 0.0 then 0.0 else u_x *. u_y

let surplus ~u_x ~u_y = u_x +. u_y

let viable ~u_x ~u_y = surplus ~u_x ~u_y >= 0.0

let transfer ~u_x ~u_y =
  if viable ~u_x ~u_y then Some (u_x -. (surplus ~u_x ~u_y /. 2.0)) else None

let after_transfer ~u_x ~u_y =
  Option.map
    (fun pi -> (u_x -. pi, u_y +. pi))
    (transfer ~u_x ~u_y)
