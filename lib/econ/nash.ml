let product u_x u_y = if u_x < 0.0 || u_y < 0.0 then 0.0 else u_x *. u_y

let surplus ~u_x ~u_y = u_x +. u_y

let viable ~u_x ~u_y = surplus ~u_x ~u_y >= 0.0

let transfer ~u_x ~u_y =
  if viable ~u_x ~u_y then Some (u_x -. (surplus ~u_x ~u_y /. 2.0)) else None

let after_transfer ~u_x ~u_y =
  Option.map
    (fun pi -> (u_x -. pi, u_y +. pi))
    (transfer ~u_x ~u_y)

(* Batch (SoA) entry points over flat utility buffers.  Each slot applies
   exactly the scalar definition above, so batch and scalar results are
   bit-identical. *)

let check_batch name n u_x u_y =
  if n < 0 || n > Array.length u_x || n > Array.length u_y then
    invalid_arg ("Nash." ^ name ^ ": bad batch length")

let product_into ~n ~u_x ~u_y out =
  check_batch "product_into" n u_x u_y;
  if n > Array.length out then invalid_arg "Nash.product_into: out too short";
  for i = 0 to n - 1 do
    out.(i) <- product u_x.(i) u_y.(i)
  done

let surplus_into ~n ~u_x ~u_y out =
  check_batch "surplus_into" n u_x u_y;
  if n > Array.length out then invalid_arg "Nash.surplus_into: out too short";
  for i = 0 to n - 1 do
    out.(i) <- surplus ~u_x:u_x.(i) ~u_y:u_y.(i)
  done

let after_transfer_into ~n ~u_x ~u_y ~out_x ~out_y =
  check_batch "after_transfer_into" n u_x u_y;
  if n > Array.length out_x || n > Array.length out_y then
    invalid_arg "Nash.after_transfer_into: out too short";
  let concluded = ref 0 in
  for i = 0 to n - 1 do
    match after_transfer ~u_x:u_x.(i) ~u_y:u_y.(i) with
    | Some (ax, ay) ->
        out_x.(i) <- ax;
        out_y.(i) <- ay;
        incr concluded
    | None ->
        out_x.(i) <- 0.0;
        out_y.(i) <- 0.0
  done;
  !concluded
