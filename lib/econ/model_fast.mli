(** Unboxed batch evaluation of agreement utilities.

    {!Traffic_model.utilities} rebuilds two [Asn.t -> float] maps per
    evaluation — fine for a single query, wasteful inside the Nelder–Mead
    loop of {!Flow_volume_opt}, which evaluates thousands of choice
    vectors per scenario.  [compile] flattens a scenario once into
    structure-of-arrays form: each party's flows become a flat
    [float array] over a fixed, ascending-ASN slot universe, and every
    [Flows.add] a demand can perform becomes a precompiled (slot, delta)
    op.  Evaluation then blits the baseline, applies the ops, and folds
    the pricing terms — no allocation beyond (reused) scratch.

    The kernel is {e bit-identical} to the reference path, not merely
    close: slot updates, clamping, fold orders and tolerances replicate
    {!Traffic_model.apply} and {!Business.utility} operation for
    operation, and slots the reference map omits hold exact [0.0] (an
    identity under float addition here).  The qcheck suite in
    [test_econ_fast.ml] pins this equivalence. *)

type kernel = Fast | Reference
(** Which evaluation path call sites use ({!Flow_volume_opt},
    {!Cash_opt}, {!Negotiation}).  [Reference] keeps the original
    map-based implementation alive as an oracle. *)

type t
(** A scenario compiled for repeated evaluation. *)

val compile : Traffic_model.scenario -> t

val scenario : t -> Traffic_model.scenario
val n_demands : t -> int

val utilities :
  ?workspace:Econ_workspace.t ->
  t ->
  Traffic_model.choice list ->
  (float * float, string) result
(** Drop-in equivalent of {!Traffic_model.utilities} (same results, same
    error messages), evaluated on the flat buffers. *)

val utilities_exn :
  ?workspace:Econ_workspace.t -> t -> Traffic_model.choice list ->
  float * float

val utilities_vector :
  ?workspace:Econ_workspace.t -> t -> float array ->
  (float * float, string) result
(** Same on a flat decision vector [[r_0; a_0; r_1; a_1; ...]] (the
    optimizer's layout) — no per-evaluation choice-list allocation. *)

val nash_objective : ?workspace:Econ_workspace.t -> t -> float array -> float
(** The exact-penalty Nash objective of {!Flow_volume_opt} on the fast
    path: [neg_infinity] on an infeasible vector, the (negative) worst
    utility when some party loses, the Nash product otherwise.
    @raise Invalid_argument on a vector of the wrong length. *)

val utilities_batch :
  ?workspace:Econ_workspace.t ->
  t ->
  vectors:float array ->
  m:int ->
  out_x:float array ->
  out_y:float array ->
  unit
(** Evaluate [m] decision vectors packed contiguously in [vectors]
    (stride [2 * n_demands]), writing per-party utilities into
    [out_x]/[out_y].
    @raise Invalid_argument on a short buffer or an infeasible vector. *)
