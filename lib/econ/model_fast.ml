open Pan_topology
module Obs = Pan_obs.Obs

type kernel = Fast | Reference

(* One Flows.add performed by Traffic_model.apply_segment, precompiled to
   a slot index in the party's flat flow buffer. *)
type op_kind = Volume | Attracted | Neg_reroute

type op = { slot : int; kind : op_kind }

(* One pricing term of Business.revenue/cost; slot = -1 marks a priced
   neighbor that never carries flow in this scenario (charge at 0). *)
type charge = { ch_slot : int; alpha : float; beta : float }

type party = {
  n_slots : int;
  base_vals : float array;  (** baseline volume per slot, ascending ASN *)
  ops : op array array;  (** ops.(i) = this party's updates for demand i *)
  customers : charge array;  (** ascending ASN (revenue fold order) *)
  providers : charge array;
  internal : Cost.t;
  base_utility : float;  (** [Business.utility] at the baseline *)
}

type t = {
  scenario : Traffic_model.scenario;
  n_demands : int;
  reroutable : float array;
  attracted_max : float array;
  px : party;
  py : party;
}

let scenario t = t.scenario
let n_demands t = t.n_demands

let compile_party scen demands p =
  let business = Traffic_model.business scen p in
  let base = Traffic_model.baseline_flows scen p in
  let base_keys, base_flow = Flows.to_sorted_arrays base in
  (* Slot universe: baseline neighbors plus every neighbor a demand can
     touch for this party.  Slots a demand drives to (or keeps at) zero
     contribute an exact +0.0 to the total-flow sum, so a fixed superset
     of the reference map's keys reproduces its ascending-order sum bit
     for bit. *)
  let touched =
    List.concat_map
      (fun (d : Traffic_model.segment_demand) ->
        if Asn.equal p d.beneficiary then
          (d.transit :: Flows.stub d.beneficiary
           :: (match d.reroute_from with Some pr -> [ pr ] | None -> []))
        else [ d.beneficiary; d.dest ])
      demands
  in
  let slots =
    List.sort_uniq Asn.compare (Array.to_list base_keys @ touched)
    |> Array.of_list
  in
  let n_slots = Array.length slots in
  let index = Hashtbl.create (2 * n_slots) in
  Array.iteri (fun i x -> Hashtbl.replace index x i) slots;
  let slot_of x = Hashtbl.find index x in
  let base_vals = Array.make (Stdlib.max 1 n_slots) 0.0 in
  Array.iteri (fun i x -> base_vals.(slot_of x) <- base_flow.(i)) base_keys;
  let ops =
    Array.of_list
      (List.map
         (fun (d : Traffic_model.segment_demand) ->
           if Asn.equal p d.beneficiary then
             let head =
               [
                 { slot = slot_of d.transit; kind = Volume };
                 { slot = slot_of (Flows.stub d.beneficiary); kind = Attracted };
               ]
             in
             let tail =
               match d.reroute_from with
               | Some pr -> [ { slot = slot_of pr; kind = Neg_reroute } ]
               | None -> []
             in
             Array.of_list (head @ tail)
           else
             [|
               { slot = slot_of d.beneficiary; kind = Volume };
               { slot = slot_of d.dest; kind = Volume };
             |])
         demands)
  in
  let charges pricing =
    Array.of_list
      (List.map
         (fun (y, pr) ->
           {
             ch_slot = (match Hashtbl.find_opt index y with
                       | Some i -> i
                       | None -> -1);
             alpha = Pricing.alpha pr;
             beta = Pricing.beta pr;
           })
         pricing)
  in
  {
    n_slots;
    base_vals;
    ops;
    customers = charges (Business.customer_pricing business);
    providers = charges (Business.provider_pricing business);
    internal = Business.internal_cost business;
    base_utility = Business.utility business base;
  }

let compile scen =
  let x, y = Agreement.parties (Traffic_model.agreement scen) in
  let demands = Traffic_model.demands scen in
  let n = List.length demands in
  let reroutable = Array.make (Stdlib.max 1 n) 0.0 in
  let attracted_max = Array.make (Stdlib.max 1 n) 0.0 in
  List.iteri
    (fun i (d : Traffic_model.segment_demand) ->
      reroutable.(i) <- d.reroutable;
      attracted_max.(i) <- d.attracted_max)
    demands;
  Obs.incr "econ.fast.compiles";
  {
    scenario = scen;
    n_demands = n;
    reroutable;
    attracted_max;
    px = compile_party scen demands x;
    py = compile_party scen demands y;
  }

(* Replicates Flows.add: clamp at zero after each delta, in apply_segment
   order. *)
let apply_ops vals ops ~reroute ~attracted =
  let volume = reroute +. attracted in
  Array.iter
    (fun op ->
      let delta =
        match op.kind with
        | Volume -> volume
        | Attracted -> attracted
        | Neg_reroute -> -.reroute
      in
      vals.(op.slot) <- Float.max 0.0 (vals.(op.slot) +. delta))
    ops

(* Replicates Pricing.charge on a non-negative flow. *)
let charge_sum charges vals =
  let acc = ref 0.0 in
  Array.iter
    (fun c ->
      let f = if c.ch_slot < 0 then 0.0 else vals.(c.ch_slot) in
      let ch =
        if c.alpha = 0.0 then 0.0
        else if c.beta = 0.0 then c.alpha
        else c.alpha *. (f ** c.beta)
      in
      acc := !acc +. ch)
    charges;
  !acc

(* Replicates Business.utility on the flat buffer: revenue and provider
   charges fold priced neighbors ascending; total flow is the ascending
   slot sum halved (Flows.total). *)
let party_utility p vals =
  let revenue = charge_sum p.customers vals in
  let provider_charges = charge_sum p.providers vals in
  let sum = ref 0.0 in
  for i = 0 to p.n_slots - 1 do
    sum := !sum +. vals.(i)
  done;
  let total = !sum /. 2.0 in
  revenue -. (Cost.eval p.internal total +. provider_charges)

(* Validation mirrors Traffic_model.apply: same checks, same order, same
   tolerances, same messages. *)
let check_bounds t get_r get_a =
  let rec go i =
    if i = t.n_demands then None
    else
      let r = get_r i and a = get_a i in
      if r < -1e-9 || a < -1e-9 then Some "negative choice volume"
      else if r > t.reroutable.(i) +. 1e-9 then
        Some "reroute exceeds reroutable volume"
      else if a > t.attracted_max.(i) +. 1e-9 then
        Some "attracted exceeds demand ceiling"
      else go (i + 1)
  in
  go 0

let eval_checked ws t get_r get_a =
  let vx, vy =
    Econ_workspace.flow_scratch ws ~n_x:t.px.n_slots ~n_y:t.py.n_slots
  in
  Array.blit t.px.base_vals 0 vx 0 t.px.n_slots;
  Array.blit t.py.base_vals 0 vy 0 t.py.n_slots;
  for i = 0 to t.n_demands - 1 do
    let reroute = get_r i and attracted = get_a i in
    apply_ops vx t.px.ops.(i) ~reroute ~attracted;
    apply_ops vy t.py.ops.(i) ~reroute ~attracted
  done;
  Obs.incr "econ.fast.evals";
  ( party_utility t.px vx -. t.px.base_utility,
    party_utility t.py vy -. t.py.base_utility )

let with_ws workspace =
  match workspace with Some ws -> ws | None -> Econ_workspace.create ()

let eval_vector_off ws t v off =
  let get_r i = v.(off + (2 * i)) and get_a i = v.(off + (2 * i) + 1) in
  match check_bounds t get_r get_a with
  | Some e -> Error e
  | None -> Ok (eval_checked ws t get_r get_a)

let utilities_vector ?workspace t v =
  if Array.length v <> 2 * t.n_demands then Error "choice list length mismatch"
  else eval_vector_off (with_ws workspace) t v 0

let utilities ?workspace t choices =
  if List.length choices <> t.n_demands then Error "choice list length mismatch"
  else begin
    let ca = Array.of_list choices in
    let get_r i = ca.(i).Traffic_model.reroute
    and get_a i = ca.(i).Traffic_model.attracted in
    match check_bounds t get_r get_a with
    | Some e -> Error e
    | None -> Ok (eval_checked (with_ws workspace) t get_r get_a)
  end

let utilities_exn ?workspace t choices =
  match utilities ?workspace t choices with
  | Ok r -> r
  | Error e -> invalid_arg ("Model_fast.utilities_exn: " ^ e)

(* The exact-penalty objective of Flow_volume_opt, on the fast path. *)
let nash_objective ?workspace t v =
  if Array.length v <> 2 * t.n_demands then
    invalid_arg "Model_fast.nash_objective: bad vector length";
  match eval_vector_off (with_ws workspace) t v 0 with
  | Error _ -> neg_infinity
  | Ok (u_x, u_y) ->
      let worst = Float.min u_x u_y in
      if worst < 0.0 then worst else u_x *. u_y

let utilities_batch ?workspace t ~vectors ~m ~out_x ~out_y =
  let dim = 2 * t.n_demands in
  if Array.length vectors < m * dim then
    invalid_arg "Model_fast.utilities_batch: vectors too short";
  if Array.length out_x < m || Array.length out_y < m then
    invalid_arg "Model_fast.utilities_batch: out too short";
  let ws = with_ws workspace in
  for k = 0 to m - 1 do
    match eval_vector_off ws t vectors (k * dim) with
    | Ok (ux, uy) ->
        out_x.(k) <- ux;
        out_y.(k) <- uy
    | Error e -> invalid_arg ("Model_fast.utilities_batch: " ^ e)
  done
