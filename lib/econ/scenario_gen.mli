(** Ready-made and randomized negotiation scenarios.

    Provides the paper's worked example (Eq. 6 on Fig. 1) with concrete
    business numbers, and a randomized generator used by the §IV-C method
    comparison experiment and the property-based tests. *)

open Pan_topology
open Pan_numerics

val fig1_scenario :
  ?transit_price:float ->
  ?stub_price:float ->
  ?internal_rate:float ->
  unit ->
  Graph.t * Traffic_model.scenario
(** The agreement [a = \[D(↑{A}); E(↑{B}, →{F})\]] of Eq. 6 with default
    prices: transit links pay-per-usage at [transit_price] (default 1.0),
    end-host revenue at [stub_price] (default 2.0) and internal cost
    linear at [internal_rate] (default 0.1).  Baseline flows are chosen so
    that both parties run a profitable transit business before the
    agreement. *)

val random_scenario :
  ?max_demands:int -> Rng.t -> Graph.t -> x:Asn.t -> y:Asn.t ->
  Traffic_model.scenario
(** A randomized mutuality scenario between peers [x] and [y]: the §VI MA
    agreement, uniformly drawn per-usage prices, internal-cost rates,
    baseline flows, and up to [max_demands] (default 4) segment demands
    over granted destinations.  @raise Invalid_argument if [x] and [y] are
    not peers or the MA grants no destinations at all. *)

val fig1_peering_scenario :
  ?transit_price:float ->
  ?stub_price:float ->
  ?internal_rate:float ->
  unit ->
  Graph.t * Traffic_model.scenario
(** The classic peering agreement of §III-B1,
    [a_p = \[D(↓{H}); E(↓{I})\]]: each party reroutes its traffic towards
    the other's customer away from its provider over the (existing)
    peering link, and may attract some extra end-host demand.  Defaults
    as in {!fig1_scenario}. *)
