(** Flow redistribution induced by an agreement (§III-B2, Eq. 7).

    A {e scenario} couples an agreement with a demand forecast: for every
    new path segment [B - T - Z] the agreement enables (beneficiary [B],
    transit party [T], destination [Z ∈ a_T]), it records how much existing
    traffic [B] could reroute onto the segment (and away from which
    provider), and the ceiling [Δf^max] on newly attracted customer
    traffic (constraint III of Eq. 9).

    A {e choice} then fixes the actually used volumes — the optimization
    variables of §IV-A.  Applying a choice yields post-agreement flow
    distributions [f^(a)] for both parties, per Eq. 7c:
    - the beneficiary shifts [reroute] away from its provider onto the
      partner link, and sources [attracted] new end-host traffic;
    - the transit party carries [reroute + attracted] additional flow
      between the beneficiary and [Z], paying its own provider if [Z] is
      one. *)

open Pan_topology

type segment_demand = {
  beneficiary : Asn.t;
  transit : Asn.t;
  dest : Asn.t;  (** [Z ∈ a_transit] *)
  reroutable : float;
      (** existing traffic of the beneficiary towards destinations behind
          [Z] that could shift onto the new segment *)
  reroute_from : Asn.t option;
      (** the beneficiary's provider currently carrying that traffic *)
  attracted_max : float;  (** [Δf^max]: ceiling on new customer demand *)
}

type scenario

val make_scenario :
  graph:Graph.t ->
  agreement:Agreement.t ->
  businesses:(Asn.t * Business.t) list ->
  baseline:(Asn.t * Flows.t) list ->
  demands:segment_demand list ->
  (scenario, string) result
(** Validate: businesses and baselines given for exactly the two parties;
    every demand has a party pair as beneficiary/transit and a destination
    the agreement actually grants; volumes non-negative. *)

val make_scenario_exn :
  graph:Graph.t ->
  agreement:Agreement.t ->
  businesses:(Asn.t * Business.t) list ->
  baseline:(Asn.t * Flows.t) list ->
  demands:segment_demand list ->
  scenario

val agreement : scenario -> Agreement.t
val demands : scenario -> segment_demand list
val baseline_flows : scenario -> Asn.t -> Flows.t
val business : scenario -> Asn.t -> Business.t

type choice = { reroute : float; attracted : float }
(** Volumes actually used on one segment; bounded by the demand. *)

val full_choice : scenario -> choice list
(** Use every segment at its forecast maximum. *)

val zero_choice : scenario -> choice list

val allowance : choice -> float
(** The flow-volume target [f^(a)_P = reroute + attracted]. *)

val apply : scenario -> choice list -> (Flows.t * Flows.t, string) result
(** Post-agreement flows of party [x] and party [y] (agreement order).
    Errors if the choice list length mismatches or a bound is violated. *)

val utilities : scenario -> choice list -> (float * float, string) result
(** Agreement utilities [(u_x(a), u_y(a))] (Eq. 3): the change in
    {!Business.utility} from baseline to post-agreement flows. *)

val utilities_exn : scenario -> choice list -> float * float
