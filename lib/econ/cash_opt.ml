type result = {
  u_x : float;
  u_y : float;
  transfer : float;
  u_x_after : float;
  u_y_after : float;
  concluded : bool;
}

let settle (u_x, u_y) =
  match Nash.after_transfer ~u_x ~u_y with
  | Some (u_x_after, u_y_after) ->
      let transfer = u_x -. u_x_after in
      { u_x; u_y; transfer; u_x_after; u_y_after; concluded = true }
  | None ->
      {
        u_x;
        u_y;
        transfer = 0.0;
        u_x_after = 0.0;
        u_y_after = 0.0;
        concluded = false;
      }

let optimize_at ?(kernel = Model_fast.Fast) ?workspace scenario choices =
  match kernel with
  | Model_fast.Reference ->
      settle (Traffic_model.utilities_exn scenario choices)
  | Model_fast.Fast ->
      settle
        (Model_fast.utilities_exn ?workspace (Model_fast.compile scenario)
           choices)

let optimize_at_compiled ?workspace model choices =
  settle (Model_fast.utilities_exn ?workspace model choices)

let optimize_compiled ?workspace model =
  optimize_at_compiled ?workspace model
    (Traffic_model.full_choice (Model_fast.scenario model))

let optimize ?kernel ?workspace scenario =
  optimize_at ?kernel ?workspace scenario (Traffic_model.full_choice scenario)

let pp fmt r =
  if r.concluded then
    Format.fprintf fmt
      "concluded: u_x=%g u_y=%g transfer=%g after=(%g, %g)" r.u_x r.u_y
      r.transfer r.u_x_after r.u_y_after
  else
    Format.fprintf fmt "not concluded: u_x=%g u_y=%g (negative surplus)" r.u_x
      r.u_y
