(** Interconnection agreements (§III-B, Eq. 2).

    An agreement between ASes [X] and [Y] is written
    {v a = [ X(↑π'_X, →ε'_X, ↓γ'_X); Y(↑π'_Y, →ε'_Y, ↓γ'_Y) ] v}
    where [π'_X ⊆ π(X)], [ε'_X ⊆ ε(X)], [γ'_X ⊆ γ(X)] are the providers,
    peers and customers of [X] to which [Y] obtains access (and
    symmetrically).  [a_X = π'_X ∪ ε'_X ∪ γ'_X] is the set of new
    destinations offered by [X].

    Classic peering is the special case granting access to all customers
    on both sides; a mutuality-based agreement (MA) grants access to
    providers and peers, which only a PAN can support stably. *)

open Pan_topology

type grant = {
  providers : Asn.Set.t;  (** [π'] *)
  peers : Asn.Set.t;  (** [ε'] *)
  customers : Asn.Set.t;  (** [γ'] *)
}

val empty_grant : grant
val grant_all : grant -> Asn.Set.t
(** [π' ∪ ε' ∪ γ'] — the notation [a_X]. *)

type t = private {
  x : Asn.t;
  y : Asn.t;
  x_grant : grant;  (** what [x] offers [y] *)
  y_grant : grant;  (** what [y] offers [x] *)
}

val make :
  Graph.t -> x:Asn.t -> y:Asn.t -> x_grant:grant -> y_grant:grant ->
  (t, string) result
(** Validate against the topology: [x ≠ y] and each grant component a
    subset of the corresponding neighbor set of the granting party. *)

val make_exn :
  Graph.t -> x:Asn.t -> y:Asn.t -> x_grant:grant -> y_grant:grant -> t

val parties : t -> Asn.t * Asn.t
val counterparty : t -> Asn.t -> Asn.t
(** @raise Invalid_argument if the AS is not a party. *)

val grant_of : t -> Asn.t -> grant
(** What the given party offers the other.
    @raise Invalid_argument if the AS is not a party. *)

val accessible : t -> to_:Asn.t -> Asn.Set.t
(** Destinations the given party gains access to (the other side's grant).
    @raise Invalid_argument if the AS is not a party. *)

val violates_grc : Graph.t -> t -> bool
(** Does the agreement grant access to any provider or peer — i.e. create
    a path that the Gao–Rexford export rules would forbid? *)

val classic_peering : Graph.t -> Asn.t -> Asn.t -> t
(** [\[X(↓γ(X)); Y(↓γ(Y))\]] — both sides offer all their customers
    (§III-B1). *)

val mutuality : Graph.t -> Asn.t -> Asn.t -> t
(** The §VI mutuality-based agreement between two existing peers: each
    side offers all its providers and peers that are not customers of the
    other side. @raise Invalid_argument if the ASes are not peers. *)

val paper_example : Graph.t -> t
(** Eq. 6 on Fig. 1: [a = \[D(↑{A}); E(↑{B}, →{F})\]] — requires the graph
    from {!Pan_topology.Gen.fig1}. *)

val pp : Format.formatter -> t -> unit
