type t = {
  mutable vals_x : float array;
  mutable vals_y : float array;
  mutable batch_x : float array;
  mutable batch_y : float array;
}

let create () = { vals_x = [||]; vals_y = [||]; batch_x = [||]; batch_y = [||] }

let grown a n =
  if Array.length a >= n then a else Array.make (Stdlib.max 8 (2 * n)) 0.0

let flow_scratch ws ~n_x ~n_y =
  ws.vals_x <- grown ws.vals_x n_x;
  ws.vals_y <- grown ws.vals_y n_y;
  (ws.vals_x, ws.vals_y)

let batch_scratch ws n =
  ws.batch_x <- grown ws.batch_x n;
  ws.batch_y <- grown ws.batch_y n;
  (ws.batch_x, ws.batch_y)
