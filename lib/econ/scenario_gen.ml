open Pan_topology
open Pan_numerics

let fig1_scenario ?(transit_price = 1.0) ?(stub_price = 2.0)
    ?(internal_rate = 0.1) () =
  let g = Gen.fig1 () in
  let asn c = Gen.fig1_asn c in
  let a = asn 'A'
  and b = asn 'B'
  and d = asn 'D'
  and e = asn 'E'
  and f = asn 'F'
  and h = asn 'H'
  and i = asn 'I' in
  let transit = Pricing.per_usage ~unit_price:transit_price in
  let stub = Pricing.per_usage ~unit_price:stub_price in
  let business_d =
    Business.create ~asn:d
      ~internal_cost:(Cost.linear ~rate:internal_rate)
      ~provider_prices:[ (a, transit) ]
      ~customer_prices:[ (h, transit); (Flows.stub d, stub) ]
      ()
  in
  let business_e =
    Business.create ~asn:e
      ~internal_cost:(Cost.linear ~rate:internal_rate)
      ~provider_prices:[ (b, transit) ]
      ~customer_prices:[ (i, transit); (Flows.stub e, stub) ]
      ()
  in
  let baseline_d =
    Flows.of_list
      [ (a, 20.0); (e, 6.0); (h, 16.0); (Flows.stub d, 10.0) ]
  in
  let baseline_e =
    Flows.of_list
      [ (b, 18.0); (d, 6.0); (i, 14.0); (Flows.stub e, 10.0) ]
  in
  let agreement = Agreement.paper_example g in
  let demands =
    Traffic_model.
      [
        (* D's traffic towards B, today via provider A, moves to D-E-B;
           the shorter path also attracts new end-host demand. *)
        {
          beneficiary = d;
          transit = e;
          dest = b;
          reroutable = 6.0;
          reroute_from = Some a;
          attracted_max = 4.0;
        };
        (* D gains access to E's peer F. *)
        {
          beneficiary = d;
          transit = e;
          dest = f;
          reroutable = 2.0;
          reroute_from = Some a;
          attracted_max = 2.0;
        };
        (* E's traffic towards A moves from provider B to E-D-A. *)
        {
          beneficiary = e;
          transit = d;
          dest = a;
          reroutable = 5.0;
          reroute_from = Some b;
          attracted_max = 3.0;
        };
      ]
  in
  let scenario =
    Traffic_model.make_scenario_exn ~graph:g ~agreement
      ~businesses:[ (d, business_d); (e, business_e) ]
      ~baseline:[ (d, baseline_d); (e, baseline_e) ]
      ~demands
  in
  (g, scenario)

let random_business rng g x =
  let price () = Pricing.per_usage ~unit_price:(Rng.uniform rng 0.5 2.0) in
  let provider_prices =
    Asn.Set.fold (fun y acc -> (y, price ()) :: acc) (Graph.providers g x) []
  in
  let customer_prices =
    (Flows.stub x, Pricing.per_usage ~unit_price:(Rng.uniform rng 1.0 3.0))
    :: Asn.Set.fold (fun y acc -> (y, price ()) :: acc) (Graph.customers g x) []
  in
  Business.create ~asn:x
    ~internal_cost:(Cost.linear ~rate:(Rng.uniform rng 0.01 0.4))
    ~provider_prices ~customer_prices ()

let random_baseline rng g x =
  let flow () = Rng.uniform rng 2.0 30.0 in
  let entries =
    Asn.Set.fold (fun y acc -> (y, flow ()) :: acc) (Graph.neighbors g x) []
  in
  Flows.of_list ((Flows.stub x, flow ()) :: entries)

let random_scenario ?(max_demands = 4) rng g ~x ~y =
  let agreement = Agreement.mutuality g x y in
  let demand_for beneficiary transit dest =
    let providers = Graph.providers g beneficiary in
    let reroute_from =
      if Asn.Set.is_empty providers then None
      else Some (Rng.choose rng (Array.of_list (Asn.Set.elements providers)))
    in
    Traffic_model.
      {
        beneficiary;
        transit;
        dest;
        reroutable = Rng.uniform rng 0.0 8.0;
        reroute_from;
        attracted_max = Rng.uniform rng 0.0 5.0;
      }
  in
  let pick_dests party =
    let granted =
      Asn.Set.elements (Agreement.accessible agreement ~to_:party)
    in
    match granted with
    | [] -> []
    | _ ->
        let arr = Array.of_list granted in
        let k = 1 + Rng.int rng (Stdlib.min max_demands (Array.length arr)) in
        Array.to_list (Rng.sample_without_replacement rng k arr)
  in
  (* A third of the scenarios are one-sided: only one party gains new
     segments while the other merely carries traffic — the asymmetric
     setting where flow-volume targets degenerate but cash compensation
     still concludes (§IV-C). *)
  let side = Rng.int rng 6 in
  let x_dests = if side = 0 then [] else pick_dests x in
  let y_dests = if side = 1 then [] else pick_dests y in
  let demands =
    List.map (demand_for x y) x_dests @ List.map (demand_for y x) y_dests
  in
  let demands =
    match demands with
    | [] -> List.map (demand_for x y) (pick_dests x)
    | _ -> demands
  in
  if demands = [] then
    invalid_arg "Scenario_gen.random_scenario: MA grants no destinations";
  Traffic_model.make_scenario_exn ~graph:g ~agreement
    ~businesses:[ (x, random_business rng g x); (y, random_business rng g y) ]
    ~baseline:[ (x, random_baseline rng g x); (y, random_baseline rng g y) ]
    ~demands

let fig1_peering_scenario ?(transit_price = 1.0) ?(stub_price = 2.0)
    ?(internal_rate = 0.1) () =
  let g = Gen.fig1 () in
  let asn c = Gen.fig1_asn c in
  let a = asn 'A'
  and b = asn 'B'
  and d = asn 'D'
  and e = asn 'E'
  and h = asn 'H'
  and i = asn 'I' in
  let transit = Pricing.per_usage ~unit_price:transit_price in
  let stub = Pricing.per_usage ~unit_price:stub_price in
  let business_d =
    Business.create ~asn:d
      ~internal_cost:(Cost.linear ~rate:internal_rate)
      ~provider_prices:[ (a, transit) ]
      ~customer_prices:[ (h, transit); (Flows.stub d, stub) ]
      ()
  in
  let business_e =
    Business.create ~asn:e
      ~internal_cost:(Cost.linear ~rate:internal_rate)
      ~provider_prices:[ (b, transit) ]
      ~customer_prices:[ (i, transit); (Flows.stub e, stub) ]
      ()
  in
  let baseline_d =
    Flows.of_list [ (a, 20.0); (e, 0.0); (h, 16.0); (Flows.stub d, 10.0) ]
  in
  let baseline_e =
    Flows.of_list [ (b, 18.0); (d, 0.0); (i, 14.0); (Flows.stub e, 10.0) ]
  in
  let agreement = Agreement.classic_peering g d e in
  let demands =
    Traffic_model.
      [
        (* D's traffic towards E's customer I moves off provider A onto
           the peering link (the f_DABE flows of Eq. 5). *)
        {
          beneficiary = d;
          transit = e;
          dest = i;
          reroutable = 5.0;
          reroute_from = Some a;
          attracted_max = 2.0;
        };
        (* and symmetrically for E towards D's customer H *)
        {
          beneficiary = e;
          transit = d;
          dest = h;
          reroutable = 4.0;
          reroute_from = Some b;
          attracted_max = 2.0;
        };
      ]
  in
  let scenario =
    Traffic_model.make_scenario_exn ~graph:g ~agreement
      ~businesses:[ (d, business_d); (e, business_e) ]
      ~baseline:[ (d, baseline_d); (e, baseline_e) ]
      ~demands
  in
  (g, scenario)
