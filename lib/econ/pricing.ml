type t = { alpha : float; beta : float }

let make ~alpha ~beta =
  if alpha < 0.0 || beta < 0.0 then
    invalid_arg "Pricing.make: negative parameter";
  { alpha; beta }

let flat_rate ~fee = make ~alpha:fee ~beta:0.0
let per_usage ~unit_price = make ~alpha:unit_price ~beta:1.0

let congestion ~alpha ~beta =
  if beta <= 1.0 then invalid_arg "Pricing.congestion: beta <= 1";
  make ~alpha ~beta

let free = { alpha = 0.0; beta = 0.0 }

let alpha t = t.alpha
let beta t = t.beta

let charge t f =
  if f < 0.0 then invalid_arg "Pricing.charge: negative flow";
  if t.alpha = 0.0 then 0.0
  else if t.beta = 0.0 then t.alpha
  else t.alpha *. (f ** t.beta)

let marginal t f =
  if f < 0.0 then invalid_arg "Pricing.marginal: negative flow";
  if t.beta = 0.0 || t.alpha = 0.0 then 0.0
  else t.alpha *. t.beta *. (f ** (t.beta -. 1.0))

let is_flat_rate t = t.beta = 0.0

let pp fmt t = Format.fprintf fmt "%g*f^%g" t.alpha t.beta

let equal t1 t2 = t1.alpha = t2.alpha && t1.beta = t2.beta
