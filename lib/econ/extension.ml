open Pan_topology

type segment = { via : Asn.t; dest : Asn.t }

type grant = {
  holder : Asn.t;
  segment : segment;
  allowance : float;
  committed : float;
}

let of_flow_volume_result scenario (result : Flow_volume_opt.result) =
  if not result.Flow_volume_opt.concluded then []
  else
    List.map2
      (fun (d : Traffic_model.segment_demand) choice ->
        {
          holder = d.Traffic_model.beneficiary;
          segment =
            { via = d.Traffic_model.transit; dest = d.Traffic_model.dest };
          allowance = Traffic_model.allowance choice;
          committed = 0.0;
        })
      (Traffic_model.demands scenario)
      result.Flow_volume_opt.choices

let remaining g = Float.max 0.0 (g.allowance -. g.committed)

let commit g volume =
  if volume < 0.0 then Error "negative volume"
  else if volume > remaining g +. 1e-9 then
    Error
      (Printf.sprintf "volume %g exceeds remaining allowance %g" volume
         (remaining g))
  else Ok { g with committed = g.committed +. volume }

let release g volume = { g with committed = Float.max 0.0 (g.committed -. volume) }

type secondary = {
  grantor : Asn.t;
  beneficiary : Asn.t;
  through : segment;
  volume : float;
}

let validate_secondary graph grants s =
  if not (Graph.connected graph s.grantor s.beneficiary) then
    Error "grantor and beneficiary are not adjacent"
  else
    let rec update acc = function
      | [] -> Error "grantor does not hold the segment"
      | g :: rest ->
          if Asn.equal g.holder s.grantor && g.segment = s.through then
            match commit g s.volume with
            | Error e -> Error e
            | Ok g' -> Ok (List.rev_append acc (g' :: rest))
          else update (g :: acc) rest
    in
    update [] grants

let extended_path s =
  [ s.beneficiary; s.grantor; s.through.via; s.through.dest ]

let chained_stats g x =
  let excluded = Asn.Set.add x (Graph.neighbors g x) in
  let count = ref 0 in
  let dests = ref Asn.Set.empty in
  (* y: x's MA partner; z: y's MA partner (z <> x); w: z's provider or
     peer reached through y's own MA segment y-z-w *)
  Asn.Set.iter
    (fun y ->
      Asn.Set.iter
        (fun z ->
          if not (Asn.equal z x) then
            Asn.Set.iter
              (fun w ->
                if
                  (not (Asn.equal w x))
                  && (not (Asn.equal w y))
                  && not (Asn.Set.mem w excluded)
                then begin
                  incr count;
                  dests := Asn.Set.add w !dests
                end)
              (Asn.Set.union (Graph.providers g z) (Graph.peers g z)))
        (Graph.peers g y))
    (Graph.peers g x);
  (!count, !dests)

let shift_allowance ~from_ ~to_ v =
  if v < 0.0 then Error "negative volume shift"
  else if v > remaining from_ +. 1e-9 then
    Error
      (Printf.sprintf "shift %g exceeds remaining allowance %g" v
         (remaining from_))
  else
    Ok
      ( { from_ with allowance = from_.allowance -. v },
        { to_ with allowance = to_.allowance +. v } )
