open Pan_topology

type party_delta = {
  party : Asn.t;
  d_revenue : float;
  d_internal : float;
  d_provider : float;
  d_cost : float;
  utility : float;
}

let delta_for scenario party flows_after =
  let business = Traffic_model.business scenario party in
  let before = Traffic_model.baseline_flows scenario party in
  let d_revenue =
    Business.revenue business flows_after -. Business.revenue business before
  in
  let d_internal =
    Business.internal_cost_at business flows_after
    -. Business.internal_cost_at business before
  in
  let d_provider =
    Business.provider_charges business flows_after
    -. Business.provider_charges business before
  in
  let d_cost = d_internal +. d_provider in
  { party; d_revenue; d_internal; d_provider; d_cost; utility = d_revenue -. d_cost }

let of_choices scenario choices =
  match Traffic_model.apply scenario choices with
  | Error e -> Error e
  | Ok (fx, fy) ->
      let x, y = Agreement.parties (Traffic_model.agreement scenario) in
      Ok (delta_for scenario x fx, delta_for scenario y fy)

let of_full scenario =
  match of_choices scenario (Traffic_model.full_choice scenario) with
  | Ok r -> r
  | Error e -> invalid_arg ("Decomposition.of_full: " ^ e)

let pp fmt d =
  Format.fprintf fmt
    "%a: Δr=%+.3f  Δi=%+.3f  Δprovider=%+.3f  Δc=%+.3f  u=%+.3f" Asn.pp
    d.party d.d_revenue d.d_internal d.d_provider d.d_cost d.utility
