type t =
  | Zero
  | Affine of { base : float; rate : float }
  | Power of { alpha : float; beta : float }
  | Piecewise of (float * float) list  (** (breakpoint, rate) pairs *)

let zero = Zero

let linear ~rate =
  if rate < 0.0 then invalid_arg "Cost.linear: negative rate";
  Affine { base = 0.0; rate }

let affine ~base ~rate =
  if base < 0.0 || rate < 0.0 then invalid_arg "Cost.affine: negative parameter";
  Affine { base; rate }

let power ~alpha ~beta =
  if alpha < 0.0 || beta < 0.0 then invalid_arg "Cost.power: negative parameter";
  Power { alpha; beta }

let piecewise_linear segments =
  if segments = [] then invalid_arg "Cost.piecewise_linear: empty";
  let rec check prev = function
    | [] -> ()
    | (brk, rate) :: rest ->
        if brk <= prev then
          invalid_arg "Cost.piecewise_linear: breakpoints not increasing";
        if rate < 0.0 then invalid_arg "Cost.piecewise_linear: negative rate";
        check brk rest
  in
  check 0.0 segments;
  Piecewise segments

let eval t f =
  if f < 0.0 then invalid_arg "Cost.eval: negative flow";
  match t with
  | Zero -> 0.0
  | Affine { base; rate } -> base +. (rate *. f)
  | Power { alpha; beta } ->
      if alpha = 0.0 then 0.0
      else if beta = 0.0 then alpha
      else alpha *. (f ** beta)
  | Piecewise segments ->
      let rec go acc lower = function
        | [] -> acc
        | [ (_, rate) ] -> acc +. (rate *. Float.max 0.0 (f -. lower))
        | (brk, rate) :: rest ->
            if f <= brk then acc +. (rate *. (f -. lower))
            else go (acc +. (rate *. (brk -. lower))) brk rest
      in
      go 0.0 0.0 segments

let pp fmt = function
  | Zero -> Format.pp_print_string fmt "0"
  | Affine { base; rate } -> Format.fprintf fmt "%g + %g*f" base rate
  | Power { alpha; beta } -> Format.fprintf fmt "%g*f^%g" alpha beta
  | Piecewise segs ->
      Format.fprintf fmt "piecewise%a"
        (Format.pp_print_list (fun fmt (b, r) ->
             Format.fprintf fmt " (%g:%g)" b r))
        segs
