open Pan_numerics

type convention = Median | Mean | P95 | Max

type meter = { mutable samples : float list; mutable count : int }

let create_meter () = { samples = []; count = 0 }

let sample meter volume =
  if volume < 0.0 then invalid_arg "Billing.sample: negative volume";
  meter.samples <- volume :: meter.samples;
  meter.count <- meter.count + 1

let sample_count meter = meter.count

let billed_volume convention meter =
  match meter.samples with
  | [] -> 0.0
  | samples -> (
      let arr = Array.of_list samples in
      match convention with
      | Median -> Stats.median arr
      | Mean -> Stats.mean arr
      | P95 -> Stats.percentile arr 95.0
      | Max -> snd (Stats.min_max arr))

let charge convention meter pricing =
  Pricing.charge pricing (billed_volume convention meter)

let reset meter =
  meter.samples <- [];
  meter.count <- 0

let pp_convention fmt = function
  | Median -> Format.pp_print_string fmt "median"
  | Mean -> Format.pp_print_string fmt "mean"
  | P95 -> Format.pp_print_string fmt "95th-percentile"
  | Max -> Format.pp_print_string fmt "max"
