open Pan_topology

type segment_demand = {
  beneficiary : Asn.t;
  transit : Asn.t;
  dest : Asn.t;
  reroutable : float;
  reroute_from : Asn.t option;
  attracted_max : float;
}

type scenario = {
  agreement : Agreement.t;
  businesses : Business.t Asn.Map.t;
  baseline : Flows.t Asn.Map.t;
  demands : segment_demand list;
}

let validate_demand agreement d =
  let x, y = Agreement.parties agreement in
  let party_pair_ok =
    (Asn.equal d.beneficiary x && Asn.equal d.transit y)
    || (Asn.equal d.beneficiary y && Asn.equal d.transit x)
  in
  if not party_pair_ok then
    Error "demand beneficiary/transit must be the agreement parties"
  else if d.reroutable < 0.0 || d.attracted_max < 0.0 then
    Error "negative demand volume"
  else if
    not (Asn.Set.mem d.dest (Agreement.accessible agreement ~to_:d.beneficiary))
  then
    Error
      (Printf.sprintf "AS%d is not granted access to AS%d"
         (Asn.to_int d.beneficiary) (Asn.to_int d.dest))
  else Ok ()

let pair_map name agreement l =
  let x, y = Agreement.parties agreement in
  let m =
    List.fold_left (fun acc (p, v) -> Asn.Map.add p v acc) Asn.Map.empty l
  in
  if
    Asn.Map.cardinal m = 2 && Asn.Map.mem x m && Asn.Map.mem y m
    && List.length l = 2
  then Ok m
  else Error (Printf.sprintf "%s must be given for exactly both parties" name)

let make_scenario ~graph:_ ~agreement ~businesses ~baseline ~demands =
  match
    ( pair_map "businesses" agreement businesses,
      pair_map "baseline" agreement baseline )
  with
  | Error e, _ | _, Error e -> Error e
  | Ok businesses, Ok baseline -> (
      let rec check = function
        | [] -> Ok { agreement; businesses; baseline; demands }
        | d :: rest -> (
            match validate_demand agreement d with
            | Error e -> Error e
            | Ok () -> check rest)
      in
      check demands)

let make_scenario_exn ~graph ~agreement ~businesses ~baseline ~demands =
  match make_scenario ~graph ~agreement ~businesses ~baseline ~demands with
  | Ok s -> s
  | Error e -> invalid_arg ("Traffic_model.make_scenario_exn: " ^ e)

let agreement s = s.agreement
let demands s = s.demands

let baseline_flows s p =
  match Asn.Map.find_opt p s.baseline with
  | Some f -> f
  | None -> invalid_arg "Traffic_model.baseline_flows: not a party"

let business s p =
  match Asn.Map.find_opt p s.businesses with
  | Some b -> b
  | None -> invalid_arg "Traffic_model.business: not a party"

type choice = { reroute : float; attracted : float }

let full_choice s =
  List.map
    (fun d -> { reroute = d.reroutable; attracted = d.attracted_max })
    s.demands

let zero_choice s =
  List.map (fun _ -> { reroute = 0.0; attracted = 0.0 }) s.demands

let allowance c = c.reroute +. c.attracted

let apply_segment flows d c =
  let volume = allowance c in
  let update party f =
    if Asn.equal party d.beneficiary then
      let f = Flows.add f d.transit volume in
      let f = Flows.add f (Flows.stub d.beneficiary) c.attracted in
      match d.reroute_from with
      | Some provider -> Flows.add f provider (-.c.reroute)
      | None -> f
    else if Asn.equal party d.transit then
      let f = Flows.add f d.beneficiary volume in
      Flows.add f d.dest volume
    else f
  in
  Asn.Map.mapi update flows

let apply s choices =
  if List.length choices <> List.length s.demands then
    Error "choice list length mismatch"
  else
    let rec check ds cs =
      match (ds, cs) with
      | [], [] -> Ok ()
      | d :: ds, c :: cs ->
          if c.reroute < -1e-9 || c.attracted < -1e-9 then
            Error "negative choice volume"
          else if c.reroute > d.reroutable +. 1e-9 then
            Error "reroute exceeds reroutable volume"
          else if c.attracted > d.attracted_max +. 1e-9 then
            Error "attracted exceeds demand ceiling"
          else check ds cs
      | _ -> assert false
    in
    match check s.demands choices with
    | Error e -> Error e
    | Ok () ->
        let final =
          List.fold_left2 apply_segment s.baseline s.demands choices
        in
        let x, y = Agreement.parties s.agreement in
        Ok (Asn.Map.find x final, Asn.Map.find y final)

let utilities s choices =
  match apply s choices with
  | Error e -> Error e
  | Ok (fx, fy) ->
      let x, y = Agreement.parties s.agreement in
      let bx = business s x and by = business s y in
      let ux =
        Business.utility bx fx -. Business.utility bx (baseline_flows s x)
      in
      let uy =
        Business.utility by fy -. Business.utility by (baseline_flows s y)
      in
      Ok (ux, uy)

let utilities_exn s choices =
  match utilities s choices with
  | Ok r -> r
  | Error e -> invalid_arg ("Traffic_model.utilities_exn: " ^ e)
