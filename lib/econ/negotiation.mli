(** Side-by-side comparison of the two agreement-optimization methods
    (§IV-C).

    Cash compensation is more flexible — it concludes whenever the joint
    utility is non-negative — while flow-volume targets offer
    predictability but can degenerate to all-zero targets when the two
    parties' cost structures are very dissimilar. *)

type comparison = {
  flow_volume : Flow_volume_opt.result;
  cash : Cash_opt.result;
}

val compare_methods :
  ?kernel:Model_fast.kernel ->
  ?workspace:Econ_workspace.t ->
  ?starts_per_dim:int ->
  Traffic_model.scenario ->
  comparison
(** [kernel] (default [Fast]) selects the utility-evaluation kernel for
    both methods; the fast path compiles the scenario once and shares the
    flat model between them.  Results are kernel-independent
    ({!Model_fast} is bit-identical to the reference). *)

val cash_joint : comparison -> float
(** Joint utility achieved by the cash method (0 if not concluded). *)

val flow_volume_joint : comparison -> float
(** Joint utility achieved by the flow-volume targets (0 if not
    concluded). *)

val cash_only : comparison -> bool
(** Did cash compensation conclude an agreement the flow-volume method
    could not? *)

val pp : Format.formatter -> comparison -> unit
