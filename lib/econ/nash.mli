(** The Nash bargaining solution for agreement utilities (§IV, Eq. 8–11).

    The Nash product [u_X · u_Y] is maximized only at Pareto-optimal, fair
    utility combinations; for cash-compensation agreements the maximizer
    has the closed form of Eq. 11. *)

val product : float -> float -> float
(** The Nash product, 0 if either utility is negative (an agreement with a
    losing party is never concluded without compensation). *)

val surplus : u_x:float -> u_y:float -> float
(** Joint utility [u_X + u_Y]. *)

val viable : u_x:float -> u_y:float -> bool
(** Can a cash-compensation agreement be concluded, i.e. is the surplus
    non-negative (§IV-B)? *)

val transfer : u_x:float -> u_y:float -> float option
(** The Nash-bargaining cash transfer [Π_{X→Y} = u_X − (u_X + u_Y)/2]
    (Eq. 11); [None] when the agreement is not viable. *)

val after_transfer : u_x:float -> u_y:float -> (float * float) option
(** Post-transfer utilities [(u_X − Π, u_Y + Π)]; both equal half the
    surplus — the equal-split property of the Nash solution under
    transferable utility. *)

val product_into :
  n:int -> u_x:float array -> u_y:float array -> float array -> unit
(** [product_into ~n ~u_x ~u_y out] writes [product u_x.(i) u_y.(i)] into
    [out.(i)] for [i < n] — the batch form used by the fast kernels;
    bit-identical to the scalar {!product} slot by slot.
    @raise Invalid_argument if any array is shorter than [n]. *)

val surplus_into :
  n:int -> u_x:float array -> u_y:float array -> float array -> unit
(** Batch {!surplus}. *)

val after_transfer_into :
  n:int ->
  u_x:float array ->
  u_y:float array ->
  out_x:float array ->
  out_y:float array ->
  int
(** Batch {!after_transfer}: viable slots get their post-transfer utility
    pair, non-viable slots get [(0, 0)] (the "not concluded" convention of
    {!Cash_opt}).  Returns the number of viable slots. *)
