(** Composite path metrics over pluggable geo / capacity lookups.

    A {!ctx} bundles the three lookups every component needs as plain
    closures, so the same scoring code runs over a {!Pan_topology.Geo}
    embedding + degree-gravity {!Pan_topology.Bandwidth} model
    ({!of_models}), over the service engine's churn-aware fallbacks, or
    over synthetic fixtures in tests.

    The arithmetic is ported expression-for-expression from the
    pre-refactor [Scion.Selection] proxies: {!latency_km} is the
    geodistance chain through interconnection points plus 100 km per AS
    hop, {!bandwidth} the bottleneck [Float.min] fold, and {!score}
    sums terms left to right starting from the first term's value — so
    the legacy application classes compile to intents whose scores are
    bit-identical floats. *)

open Pan_topology

type ctx = {
  as_location : Asn.t -> Geo.point;
  link_location : Asn.t -> Asn.t -> Geo.point;
  link_capacity : Asn.t -> Asn.t -> float;
}

val of_models : geo:Geo.t -> bandwidth:Bandwidth.t -> ctx
(** Lookups raise [Not_found] exactly where the models do (unknown AS,
    non-adjacent link). *)

val per_hop_penalty_km : float
(** 100 km of equivalent distance per AS hop. *)

val latency_km : ctx -> Asn.t list -> float
(** @raise Invalid_argument on paths shorter than 2 ASes. *)

val bandwidth : ctx -> Asn.t list -> float
(** Bottleneck capacity.
    @raise Invalid_argument on paths shorter than 2 ASes. *)

val component_value : ctx -> Intent.component -> Asn.t list -> float

val score : ctx -> Intent.term list -> Asn.t list -> float
(** Lower is better.  @raise Invalid_argument on an empty term list. *)

val compare_paths : ctx -> Intent.term list -> Asn.t list -> Asn.t list -> int
(** Score, then AS-level length, then lexicographic — the legacy
    [Selection] candidate order. *)
