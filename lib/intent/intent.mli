(** Path-selection intents: what an end-host wants from a path, as a
    value.

    The paper's §I argument is that path-aware networks let end-hosts
    choose paths per application.  An intent captures one such choice as
    data — a composite optimization metric, hard constraints on the
    eligible subgraph, and a candidate budget — so that every selection
    layer (the SCION application classes, the resident query service,
    the CLIs) compiles down to the same engine instead of hard-coding
    its own ranking.

    {2 Text syntax}

    A spec is [;]-separated clauses, each [key=value]; whitespace is
    free between tokens.  Clauses (each at most once):

    {v
    metric=<term>(+<term>)*     term: [<weight>*]<component>
    k=<int>                     candidate budget (>= 1, default 1)
    max-hops=<int>              AS-level hop bound (>= 1)
    exclude-as=AS1,AS7          blocked ASes
    exclude-link=AS1-AS2,...    blocked links (endpoints either order)
    geo-fence=<lat>,<lon>,<km>  only ASes within radius of the center
    require=encrypted,monitored links must carry all listed attributes
    v}

    Components: [latency] (proxy km), [nlatency] (latency / 1000),
    [bandwidth] (negated bottleneck capacity), [nbandwidth]
    (1000 / max 1 capacity), [hops] (AS count).  All metrics minimize;
    terms are summed left to right.  Examples:

    {v
    metric=latency; k=4
    metric=nlatency+nbandwidth; k=8; max-hops=5; require=encrypted
    metric=bandwidth; exclude-as=AS13; geo-fence=48.1,11.6,3000
    v}

    {!parse} and {!to_string} round-trip: parsing a printed intent
    yields an equal value, and printing is canonical (fixed clause
    order, sorted deduplicated constraint lists, weight-1 terms printed
    bare). *)

open Pan_topology

type component =
  | Latency  (** latency proxy, km *)
  | Nlatency  (** latency proxy / 1000 *)
  | Bandwidth  (** negated bottleneck capacity *)
  | Nbandwidth  (** 1000 / max 1 capacity *)
  | Hops  (** AS-level path length *)

type term = { weight : float; component : component }
type attr = Encrypted | Monitored

type fence = { center : Geo.point; radius_km : float }

type t = private {
  metric : term list;  (** non-empty; summed left to right, minimized *)
  k : int;  (** candidate budget, >= 1 *)
  max_hops : int option;
  exclude_as : Asn.t list;  (** sorted, deduplicated *)
  exclude_link : (Asn.t * Asn.t) list;  (** normalized lo < hi, sorted *)
  geo_fence : fence option;
  require : attr list;  (** sorted, deduplicated *)
}

val make :
  ?metric:term list ->
  ?k:int ->
  ?max_hops:int ->
  ?exclude_as:Asn.t list ->
  ?exclude_link:(Asn.t * Asn.t) list ->
  ?geo_fence:fence ->
  ?require:attr list ->
  unit ->
  t
(** Normalizing constructor (sorts and deduplicates constraint lists,
    normalizes link endpoints).  Defaults: [metric=latency], [k=1], no
    constraints.
    @raise Invalid_argument on an empty metric, non-finite weight,
    [k < 1], [max_hops < 1], a non-positive fence radius, or a
    self-link exclusion. *)

val default : t
(** [make ()]: single-candidate minimum-latency. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Canonical spec text; [parse (to_string t)] equals [Ok t]. *)

val pp : Format.formatter -> t -> unit

val parse : string -> (t, [ `Msg of string ]) result
(** Parse a spec.  Errors are ["line %d, col %d: %s"] with 1-based
    positions into the given string. *)

val parse_located : string -> (t, int * int * string) result
(** As {!parse}, with the error position structured as
    [(line, col, message)] — for embedders (the stream parser, CLIs)
    that re-anchor columns into a larger source. *)

val error_message : int * int * string -> string
(** Format a {!parse_located} error as ["line %d, col %d: %s"]. *)

val parse_exn : string -> t
(** @raise Invalid_argument as ["Intent.parse: line %d, col %d: %s"]. *)

val component_label : component -> string
val attr_label : attr -> string

val default_attrs : Asn.t -> Asn.t -> attr list
(** Synthetic per-link attribute assignment: a deterministic hash of the
    unordered endpoint ASNs (no real dataset carries link attributes).
    Stable across runs and topology seeds; callers with real attribute
    data pass their own function instead. *)
