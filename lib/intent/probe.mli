(** Deterministic path probing with failover down a ranked candidate
    list.

    A probe walks candidates best-first and "sends" down each path; a
    link outage fails the attempt and fails over to the next candidate.
    Outages come from the PR 5 fault harness ({!Pan_runner.Fault}): when
    a spec is active (via [Fault.set], [--faults], or
    [PANAGREE_FAULTS]), each {e link} gets one injection draw keyed by
    its dense link index — a pure function of the spec seed and the
    link, independent of probe order, candidate list, or pool size — so
    which links are out, and therefore the failover trace, is
    bit-reproducible.  With no active spec every link is up and the
    first candidate wins.

    Injected delays advance the ambient clock exactly as the supervised
    runner's chunk attempts do (virtual clock: deterministic time;
    real clock: actual sleeps). *)

open Pan_topology

type attempt = {
  path : Asn.t list;
  failed_link : (Asn.t * Asn.t) option;
      (** the first link of the path that was out, [None] on success *)
}

type outcome = {
  attempts : attempt list;  (** probe order: every tried candidate *)
  selected : Asn.t list option;
      (** the first fully-up candidate, or [None] if all failed *)
}

val run : topo:Compact.t -> Asn.t list list -> outcome
(** Probe candidates in the given (ranked) order, stopping at the first
    success.  Counts [intent.probe.attempts] / [intent.probe.failovers]
    when {!Pan_obs.Obs} is configured.
    @raise Invalid_argument on a path AS not in [topo]. *)

val failed_links : outcome -> (Pan_topology.Asn.t * Pan_topology.Asn.t) list
(** Every link that failed a probe, in probe order — ready to compose
    into a {!Pan_topology.Compact.Mask} for a constrained re-query. *)
