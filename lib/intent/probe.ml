open Pan_topology
module Obs = Pan_obs.Obs
module Clock = Pan_obs.Clock
module Fault = Pan_runner.Fault

type attempt = { path : Asn.t list; failed_link : (Asn.t * Asn.t) option }
type outcome = { attempts : attempt list; selected : Asn.t list option }

(* One fault draw per (unordered) link: the chunk index is the link's
   dense key, the attempt index is 0 — so whether a link is out is a
   pure function of the active {!Fault} spec and the link itself,
   independent of which candidate list or probe order reaches it.  The
   same link therefore fails consistently across candidates within one
   probe pass, which is what makes failover transcripts reproducible. *)
let link_out topo ~clock a b =
  let n = Compact.num_ases topo in
  let i = Compact.index_of_exn topo a and j = Compact.index_of_exn topo b in
  let chunk = if i < j then (i * n) + j else (j * n) + i in
  match Fault.inject ~clock ~chunk ~attempt:0 with
  | () -> false
  | exception Fault.Injected _ -> true

let probe_path topo ~clock ases =
  let rec go = function
    | a :: (b :: _ as rest) ->
        if link_out topo ~clock a b then Some (a, b) else go rest
    | [ _ ] | [] -> None
  in
  go ases

let run ~topo paths =
  Obs.with_span "intent.probe" @@ fun () ->
  let clock =
    match Obs.clock () with Some c -> c | None -> Clock.of_env ()
  in
  let rec go acc = function
    | [] -> { attempts = List.rev acc; selected = None }
    | path :: rest -> (
        Obs.incr "intent.probe.attempts";
        match probe_path topo ~clock path with
        | None ->
            {
              attempts = List.rev ({ path; failed_link = None } :: acc);
              selected = Some path;
            }
        | Some link ->
            Obs.incr "intent.probe.failovers";
            go ({ path; failed_link = Some link } :: acc) rest)
  in
  go [] paths

let failed_links outcome =
  List.filter_map (fun a -> a.failed_link) outcome.attempts
