open Pan_topology

type ctx = {
  as_location : Asn.t -> Geo.point;
  link_location : Asn.t -> Asn.t -> Geo.point;
  link_capacity : Asn.t -> Asn.t -> float;
}

let of_models ~geo ~bandwidth =
  {
    as_location = Geo.as_location geo;
    link_location = Geo.link_location geo;
    link_capacity = Bandwidth.link_capacity bandwidth;
  }

let per_hop_penalty_km = 100.0

(* The arithmetic below is ported expression-for-expression from the
   pre-refactor Scion.Selection.latency_proxy / Bandwidth.path_bandwidth
   so that the Selection facade stays bit-identical: same association,
   same operand order, same fold shapes. *)

let latency_km ctx ases =
  match ases with
  | [] | [ _ ] -> invalid_arg "Metric.latency_km: path too short"
  | first :: _ ->
      let rec link_points = function
        | a :: (b :: _ as rest) -> ctx.link_location a b :: link_points rest
        | _ -> []
      in
      let links = link_points ases in
      let src_loc = ctx.as_location first in
      let rec last = function
        | [ x ] -> x
        | _ :: rest -> last rest
        | [] -> assert false
      in
      let dst_loc = ctx.as_location (last ases) in
      let rec chain acc prev = function
        | [] -> acc +. Geo.distance_km prev dst_loc
        | p :: rest -> chain (acc +. Geo.distance_km prev p) p rest
      in
      let geodist =
        match links with
        | [] -> Geo.distance_km src_loc dst_loc
        | p :: rest -> chain (Geo.distance_km src_loc p) p rest
      in
      geodist +. (per_hop_penalty_km *. float_of_int (List.length ases))

let bandwidth ctx path =
  let rec go = function
    | a :: (b :: _ as rest) -> Float.min (ctx.link_capacity a b) (go rest)
    | [ _ ] | [] -> infinity
  in
  match path with
  | _ :: _ :: _ -> go path
  | _ -> invalid_arg "Metric.bandwidth: path shorter than 2 ASes"

let component_value ctx component ases =
  match component with
  | Intent.Latency -> latency_km ctx ases
  | Intent.Nlatency -> latency_km ctx ases /. 1000.0
  | Intent.Bandwidth -> -.bandwidth ctx ases
  | Intent.Nbandwidth -> 1000.0 /. Float.max 1.0 (bandwidth ctx ases)
  | Intent.Hops -> float_of_int (List.length ases)

(* Weight-1 terms contribute the bare component value (no [1.0 *.]
   canonicalization concerns), and the sum folds left to right from the
   first term's value — no 0.0 seed — which is exactly how the legacy
   Web score associates. *)
let term_value ctx { Intent.weight; component } ases =
  let v = component_value ctx component ases in
  if weight = 1.0 then v else weight *. v

let score ctx terms ases =
  match terms with
  | [] -> invalid_arg "Metric.score: empty metric"
  | t :: rest ->
      List.fold_left
        (fun acc t -> acc +. term_value ctx t ases)
        (term_value ctx t ases) rest

let compare_paths ctx terms a1 a2 =
  match compare (score ctx terms a1) (score ctx terms a2) with
  | 0 -> (
      match compare (List.length a1) (List.length a2) with
      | 0 -> compare a1 a2
      | c -> c)
  | c -> c
