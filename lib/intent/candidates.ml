open Pan_topology
module Obs = Pan_obs.Obs

(* ------------------------------------------------------------------ *)
(* Deterministic Yen-style K shortest paths over the CSR               *)

(* Paths are dense-index lists; order is (hops, then forward
   lexicographic on the index sequence), which makes the enumeration a
   pure function of the frozen view + restriction — no hashing, no
   iteration-order dependence.  The BFS subroutine computes
   distance-to-dst once per spur query and reconstructs the
   lexicographically smallest minimum-hop path by always stepping to the
   smallest-index neighbor one level closer to the destination. *)

let link_key n i j = if i < j then (i * n) + j else (j * n) + i

let shortest_path topo ~edge_ok ~blocked_nodes ~blocked_edges ~src ~dst =
  let n = Compact.num_ases topo in
  let allowed i j =
    edge_ok i j && not (Hashtbl.mem blocked_edges (link_key n i j))
  in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  if not (Bitset.mem blocked_nodes dst) then (
    dist.(dst) <- 0;
    Queue.add dst queue);
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Compact.iter_neighbors topo u (fun v ->
        if
          dist.(v) < 0
          && (not (Bitset.mem blocked_nodes v))
          && allowed u v
        then (
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue))
  done;
  if src <> dst && (dist.(src) < 0 || Bitset.mem blocked_nodes src) then None
  else if src = dst then
    if Bitset.mem blocked_nodes src then None else Some [ src ]
  else
    let rec walk cur acc =
      if cur = dst then List.rev (cur :: acc)
      else
        let best = ref (-1) in
        Compact.iter_neighbors topo cur (fun v ->
            if
              dist.(v) = dist.(cur) - 1
              && (not (Bitset.mem blocked_nodes v))
              && allowed cur v
              && (!best < 0 || v < !best)
            then best := v);
        (* dist was computed over exactly these edges, so a next hop
           always exists *)
        assert (!best >= 0);
        walk !best (cur :: acc)
    in
    Some (walk src [])

(* (hops, lex) total order on index paths *)
let compare_paths p1 p2 =
  match compare (List.length p1) (List.length p2) with
  | 0 -> compare p1 p2
  | c -> c

let rec insert_sorted p = function
  | [] -> [ p ]
  | hd :: tl as l ->
      let c = compare_paths hd p in
      if c = 0 then l else if c < 0 then hd :: insert_sorted p tl else p :: l

let rec take_prefix k l =
  if k = 0 then []
  else match l with [] -> [] | x :: tl -> x :: take_prefix (k - 1) tl

let k_shortest topo ?mask ?(edge_ok = fun _ _ -> true) ?max_hops ~src ~dst ~k
    () =
  if k < 1 then invalid_arg "Candidates.k_shortest: k must be >= 1";
  let n = Compact.num_ases topo in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Candidates.k_shortest: endpoint outside [0, num_ases)";
  let mask = match mask with Some m -> m | None -> Compact.Mask.all topo in
  let edge_ok i j = Compact.Mask.allows_link mask i j && edge_ok i j in
  let node_ok i = Compact.Mask.allows_as mask i in
  let within_hops p =
    match max_hops with None -> true | Some h -> List.length p <= h
  in
  if not (node_ok src && node_ok dst) then []
  else
    let no_nodes = Bitset.create ~width:n in
    let no_edges = Hashtbl.create 1 in
    match
      shortest_path topo ~edge_ok ~blocked_nodes:no_nodes
        ~blocked_edges:no_edges ~src ~dst
    with
    | None -> []
    | Some first when not (within_hops first) -> []
    | Some first ->
        let accepted = ref [ first ] in
        let frontier = ref [] in
        (* candidate paths, sorted ascending, deduplicated *)
        let continue = ref true in
        while List.length !accepted < k && !continue do
          let last = List.nth !accepted (List.length !accepted - 1) in
          let last_arr = Array.of_list last in
          let len = Array.length last_arr in
          (* One spur per position along the last accepted path. *)
          for i = 0 to len - 2 do
            let spur = last_arr.(i) in
            let root = Array.sub last_arr 0 (i + 1) in
            let blocked_edges = Hashtbl.create 8 in
            List.iter
              (fun p ->
                let p_arr = Array.of_list p in
                if
                  Array.length p_arr > i + 1
                  && Array.sub p_arr 0 (i + 1) = root
                then
                  Hashtbl.replace blocked_edges
                    (link_key n p_arr.(i) p_arr.(i + 1))
                    ())
              !accepted;
            let blocked_nodes = Bitset.create ~width:n in
            Array.iteri
              (fun j v -> if j < i then Bitset.unsafe_add blocked_nodes v)
              root;
            (match
               shortest_path topo ~edge_ok ~blocked_nodes ~blocked_edges
                 ~src:spur ~dst
             with
            | None -> ()
            | Some spur_path ->
                let total = Array.to_list (Array.sub root 0 i) @ spur_path in
                if
                  within_hops total
                  && (not (List.mem total !accepted))
                  && not (List.exists (fun p -> p = total) !frontier)
                then frontier := insert_sorted total !frontier)
          done;
          match !frontier with
          | [] -> continue := false
          | best :: rest ->
              frontier := rest;
              accepted := !accepted @ [ best ]
        done;
        take_prefix k !accepted

(* ------------------------------------------------------------------ *)
(* Intent-driven candidate generation                                  *)

type result = { path : Asn.t list; score : float; hops : int }

let mask_of_intent ?mask topo (intent : Intent.t) =
  let m = match mask with Some m -> m | None -> Compact.Mask.all topo in
  let m =
    List.fold_left
      (fun m asn ->
        match Compact.index_of topo asn with
        | Some i -> Compact.Mask.exclude_as m i
        | None -> m)
      m intent.exclude_as
  in
  List.fold_left
    (fun m (a, b) ->
      match (Compact.index_of topo a, Compact.index_of topo b) with
      | Some i, Some j when i <> j -> Compact.Mask.exclude_link m i j
      | _ -> m)
    m intent.exclude_link

let generate ~topo ~(metric : Metric.ctx)
    ?(attrs = Intent.default_attrs) ?mask (intent : Intent.t) ~src ~dst =
  Obs.with_span "intent.candidates" @@ fun () ->
  let s = Compact.index_of_exn topo src in
  let d = Compact.index_of_exn topo dst in
  if s = d then invalid_arg "Candidates.generate: src = dst";
  let mask = mask_of_intent ?mask topo intent in
  (* Geo fence: an AS with no known location cannot be shown to lie
     inside the fence, so it is excluded.  Decisions are memoized per
     query — fences touch only the ASes the search actually visits. *)
  let fence_ok =
    match intent.geo_fence with
    | None -> fun _ -> true
    | Some { center; radius_km } ->
        let memo = Array.make (Compact.num_ases topo) 0 in
        fun i ->
          if memo.(i) = 0 then
            memo.(i) <-
              (match metric.Metric.as_location (Compact.id topo i) with
              | loc -> if Geo.distance_km center loc <= radius_km then 1 else 2
              | exception Not_found -> 2);
          memo.(i) = 1
  in
  let require_ok =
    match intent.require with
    | [] -> fun _ _ -> true
    | req ->
        fun i j ->
          let have = attrs (Compact.id topo i) (Compact.id topo j) in
          List.for_all (fun a -> List.mem a have) req
  in
  let edge_ok i j = fence_ok i && fence_ok j && require_ok i j in
  if not (fence_ok s && fence_ok d) then []
  else
    let paths =
      k_shortest topo ~mask ~edge_ok ?max_hops:intent.max_hops ~src:s ~dst:d
        ~k:intent.k ()
    in
    Obs.incr ~by:(List.length paths) "intent.candidates.paths";
    paths
    |> List.map (fun p ->
           let ases = List.map (Compact.id topo) p in
           {
             path = ases;
             score = Metric.score metric intent.metric ases;
             hops = List.length ases;
           })
    |> List.stable_sort (fun a b ->
           match compare a.score b.score with
           | 0 -> (
               match compare a.hops b.hops with
               | 0 -> compare a.path b.path
               | c -> c)
           | c -> c)
