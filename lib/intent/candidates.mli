(** Deterministic K-shortest-path candidate generation over the frozen
    compact core, restricted by masks and intent constraints.

    {!k_shortest} is a Yen-style enumeration directly over the
    {!Pan_topology.Compact} CSR: paths come out in a total order —
    AS-level hop count, then forward-lexicographic on the dense index
    sequence — making the result a pure function of the frozen view and
    the restriction, byte-stable across runs and pool sizes.  The
    shortest-path subroutine is an unweighted BFS that reconstructs the
    lexicographically smallest minimum-hop path, and spur queries
    restrict the subgraph with a {!Pan_topology.Compact.Mask} plus an
    extra edge predicate (geo fences, required link attributes).

    {!generate} drives it from an {!Intent.t}: the intent's exclusions
    compose onto a caller-supplied base mask (e.g. the service's
    current downed links), the K raw candidates are then scored with
    {!Metric.score} and re-ranked by (score, hops, lexicographic) — the
    legacy [Selection] order.  Paths are AS-level connectivity walks;
    Gao-Rexford/agreement policy filtering stays in the policy layers
    above. *)

open Pan_topology

val k_shortest :
  Compact.t ->
  ?mask:Compact.Mask.mask ->
  ?edge_ok:(int -> int -> bool) ->
  ?max_hops:int ->
  src:int ->
  dst:int ->
  k:int ->
  unit ->
  int list list
(** Up to [k] simple paths (dense indices, endpoints included) in
    (hops, lex) order; fewer when the restricted subgraph has fewer.
    [edge_ok] is consulted with both endpoint orders' normalized pair
    [(i, j)] as traversed; it must be symmetric.  [max_hops] bounds the
    AS count per path.  [src = dst] yields [[[src]]].
    @raise Invalid_argument if [k < 1] or an endpoint is out of range. *)

type result = { path : Asn.t list; score : float; hops : int }

val mask_of_intent :
  ?mask:Compact.Mask.mask -> Compact.t -> Intent.t -> Compact.Mask.mask
(** The intent's AS/link exclusions composed onto [mask] (default: no
    restriction).  Exclusions naming ASes outside the topology are
    vacuous and skipped. *)

val generate :
  topo:Compact.t ->
  metric:Metric.ctx ->
  ?attrs:(Asn.t -> Asn.t -> Intent.attr list) ->
  ?mask:Compact.Mask.mask ->
  Intent.t ->
  src:Asn.t ->
  dst:Asn.t ->
  result list
(** Ranked candidates for an intent: K-shortest under the composed
    restriction, scored by the intent metric, best first.  [attrs]
    supplies per-link attributes for [require] clauses (default
    {!Intent.default_attrs}); ASes whose location is unknown to
    [metric] fall outside any geo fence.  Records the
    [intent.candidates] span and [intent.candidates.paths] counter.
    @raise Invalid_argument on unknown endpoints or [src = dst]. *)
