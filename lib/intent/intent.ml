open Pan_topology

type component = Latency | Nlatency | Bandwidth | Nbandwidth | Hops
type term = { weight : float; component : component }
type attr = Encrypted | Monitored
type fence = { center : Geo.point; radius_km : float }

type t = {
  metric : term list;
  k : int;
  max_hops : int option;
  exclude_as : Asn.t list;
  exclude_link : (Asn.t * Asn.t) list;
  geo_fence : fence option;
  require : attr list;
}

let component_label = function
  | Latency -> "latency"
  | Nlatency -> "nlatency"
  | Bandwidth -> "bandwidth"
  | Nbandwidth -> "nbandwidth"
  | Hops -> "hops"

let attr_label = function Encrypted -> "encrypted" | Monitored -> "monitored"

let norm_link name (a, b) =
  match Asn.compare a b with
  | 0 ->
      invalid_arg
        (Printf.sprintf "%s: self-link on AS%d" name (Asn.to_int a))
  | c when c < 0 -> (a, b)
  | _ -> (b, a)

let make ?(metric = [ { weight = 1.0; component = Latency } ]) ?(k = 1)
    ?max_hops ?(exclude_as = []) ?(exclude_link = []) ?geo_fence
    ?(require = []) () =
  if metric = [] then invalid_arg "Intent.make: metric needs at least one term";
  List.iter
    (fun { weight; _ } ->
      if not (Float.is_finite weight) then
        invalid_arg "Intent.make: metric weights must be finite")
    metric;
  if k < 1 then invalid_arg "Intent.make: k must be >= 1";
  (match max_hops with
  | Some h when h < 1 -> invalid_arg "Intent.make: max-hops must be >= 1"
  | _ -> ());
  (match geo_fence with
  | Some f when not (f.radius_km > 0.0) ->
      invalid_arg "Intent.make: geo-fence radius must be positive"
  | _ -> ());
  {
    metric;
    k;
    max_hops;
    exclude_as = List.sort_uniq Asn.compare exclude_as;
    exclude_link =
      List.sort_uniq compare (List.map (norm_link "Intent.make") exclude_link);
    geo_fence;
    require = List.sort_uniq compare require;
  }

let default = make ()
let equal a b = compare a b = 0

(* ------------------------------------------------------------------ *)
(* Canonical printing                                                  *)

(* Shortest decimal form that parses back to the same double — keeps
   specs readable while guaranteeing print/parse round-trip. *)
let float_str f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let term_str { weight; component } =
  if weight = 1.0 then component_label component
  else float_str weight ^ "*" ^ component_label component

let pp_asn x = Printf.sprintf "AS%d" (Asn.to_int x)

let to_string t =
  let clauses = ref [] in
  let add c = clauses := c :: !clauses in
  add ("metric=" ^ String.concat "+" (List.map term_str t.metric));
  add (Printf.sprintf "k=%d" t.k);
  Option.iter (fun h -> add (Printf.sprintf "max-hops=%d" h)) t.max_hops;
  if t.exclude_as <> [] then
    add ("exclude-as=" ^ String.concat "," (List.map pp_asn t.exclude_as));
  if t.exclude_link <> [] then
    add
      ("exclude-link="
      ^ String.concat ","
          (List.map (fun (a, b) -> pp_asn a ^ "-" ^ pp_asn b) t.exclude_link));
  Option.iter
    (fun f ->
      add
        (Printf.sprintf "geo-fence=%s,%s,%s"
           (float_str f.center.Geo.lat)
           (float_str f.center.Geo.lon)
           (float_str f.radius_km)))
    t.geo_fence;
  if t.require <> [] then
    add ("require=" ^ String.concat "," (List.map attr_label t.require));
  String.concat "; " (List.rev !clauses)

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Error of int * int * string

let line_col s i =
  let line = ref 1 and bol = ref 0 in
  let stop = min i (String.length s) in
  for j = 0 to stop - 1 do
    if s.[j] = '\n' then (
      incr line;
      bol := j + 1)
  done;
  (!line, i - !bol + 1)

let fail s i fmt =
  Printf.ksprintf
    (fun msg ->
      let line, col = line_col s i in
      raise (Error (line, col, msg)))
    fmt

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

(* Split [v] (which starts at absolute offset [base] of the spec) on
   [sep], trimming whitespace around each piece and keeping each piece's
   absolute offset so sub-parsers report exact columns. *)
let split_at base v sep =
  let n = String.length v in
  let rec go start acc =
    let stop =
      match String.index_from_opt v start sep with Some j -> j | None -> n
    in
    let a = ref start and b = ref stop in
    while !a < !b && is_ws v.[!a] do
      incr a
    done;
    while !b > !a && is_ws v.[!b - 1] do
      decr b
    done;
    let acc = (String.sub v !a (!b - !a), base + !a) :: acc in
    if stop >= n then List.rev acc else go (stop + 1) acc
  in
  go 0 []

let parse_asn s (tok, off) =
  let bad () = fail s off "expected an AS number like AS42, got %S" tok in
  if String.length tok < 3 || String.sub tok 0 2 <> "AS" then bad ();
  match int_of_string_opt (String.sub tok 2 (String.length tok - 2)) with
  | Some n when n >= 0 -> Asn.of_int n
  | _ -> bad ()

let parse_pos_int s name (tok, off) =
  match int_of_string_opt tok with
  | Some n when n >= 1 -> n
  | Some _ -> fail s off "%s must be >= 1, got %s" name tok
  | None -> fail s off "expected an integer %s, got %S" name tok

let parse_float s name (tok, off) =
  match float_of_string_opt tok with
  | Some f when Float.is_finite f -> f
  | _ -> fail s off "expected a finite number for %s, got %S" name tok

let parse_component s (tok, off) =
  match tok with
  | "latency" -> Latency
  | "nlatency" -> Nlatency
  | "bandwidth" -> Bandwidth
  | "nbandwidth" -> Nbandwidth
  | "hops" -> Hops
  | _ ->
      fail s off
        "unknown metric component %S (expected latency, nlatency, bandwidth, \
         nbandwidth or hops)"
        tok

let parse_term s (tok, off) =
  match String.index_opt tok '*' with
  | None -> { weight = 1.0; component = parse_component s (tok, off) }
  | Some j ->
      let w = String.trim (String.sub tok 0 j) in
      let c0 = ref (j + 1) in
      while !c0 < String.length tok && is_ws tok.[!c0] do
        incr c0
      done;
      let c = String.sub tok !c0 (String.length tok - !c0) in
      {
        weight = parse_float s "a metric weight" (w, off);
        component = parse_component s (c, off + !c0);
      }

let parse_attr s (tok, off) =
  match tok with
  | "encrypted" -> Encrypted
  | "monitored" -> Monitored
  | _ ->
      fail s off "unknown link attribute %S (expected encrypted or monitored)"
        tok

let parse_link s (tok, off) =
  match split_at off tok '-' with
  | [ a; b ] ->
      let a = parse_asn s a and b = parse_asn s b in
      if Asn.compare a b = 0 then
        fail s off "exclude-link: self-link on %s" (pp_asn a);
      if Asn.compare a b < 0 then (a, b) else (b, a)
  | _ -> fail s off "expected a link like AS1-AS2, got %S" tok

let parse_spec s =
  let n = String.length s in
  let i = ref 0 in
  let skip_ws () =
    while !i < n && is_ws s.[!i] do
      incr i
    done
  in
  let metric = ref None in
  let k = ref None in
  let max_hops = ref None in
  let exclude_as = ref [] in
  let exclude_link = ref [] in
  let geo_fence = ref None in
  let require = ref None in
  let seen = Hashtbl.create 7 in
  let clause () =
    let key_start = !i in
    while
      !i < n && (s.[!i] = '-' || (s.[!i] >= 'a' && s.[!i] <= 'z'))
    do
      incr i
    done;
    let key = String.sub s key_start (!i - key_start) in
    if key = "" then fail s !i "expected a clause like metric=... or k=...";
    skip_ws ();
    if !i >= n || s.[!i] <> '=' then fail s !i "expected '=' after %S" key;
    incr i;
    skip_ws ();
    let v_start = !i in
    while !i < n && s.[!i] <> ';' do
      incr i
    done;
    let v_stop = ref !i in
    while !v_stop > v_start && is_ws s.[!v_stop - 1] do
      decr v_stop
    done;
    let v = String.sub s v_start (!v_stop - v_start) in
    if Hashtbl.mem seen key then fail s key_start "duplicate clause %S" key;
    Hashtbl.replace seen key ();
    match key with
    | "metric" -> metric := Some (List.map (parse_term s) (split_at v_start v '+'))
    | "k" -> k := Some (parse_pos_int s "k" (v, v_start))
    | "max-hops" ->
        max_hops := Some (parse_pos_int s "max-hops" (v, v_start))
    | "exclude-as" ->
        exclude_as := List.map (parse_asn s) (split_at v_start v ',')
    | "exclude-link" ->
        exclude_link := List.map (parse_link s) (split_at v_start v ',')
    | "geo-fence" -> (
        match split_at v_start v ',' with
        | [ lat; lon; r ] ->
            let lat = parse_float s "geo-fence latitude" lat in
            let lon = parse_float s "geo-fence longitude" lon in
            let radius_km = parse_float s "geo-fence radius" r in
            if not (radius_km > 0.0) then
              fail s v_start "geo-fence radius must be positive, got %s"
                (float_str radius_km);
            geo_fence := Some { center = { Geo.lat; lon }; radius_km }
        | pieces ->
            fail s v_start
              "geo-fence takes <lat>,<lon>,<radius-km>, got %d value(s)"
              (List.length pieces))
    | "require" ->
        require := Some (List.map (parse_attr s) (split_at v_start v ','))
    | _ ->
        fail s key_start
          "unknown clause %S (expected metric, k, max-hops, exclude-as, \
           exclude-link, geo-fence or require)"
          key
  in
  skip_ws ();
  if !i >= n then fail s !i "empty intent spec";
  clause ();
  skip_ws ();
  while !i < n do
    if s.[!i] <> ';' then fail s !i "expected ';' between clauses";
    incr i;
    skip_ws ();
    clause ();
    skip_ws ()
  done;
  make ?metric:!metric ?k:!k ?max_hops:!max_hops ~exclude_as:!exclude_as
    ~exclude_link:!exclude_link ?geo_fence:!geo_fence ?require:!require ()

let parse_located s =
  match parse_spec s with
  | t -> Ok t
  | exception Error (line, col, msg) -> Result.error (line, col, msg)

let error_message (line, col, msg) =
  Printf.sprintf "line %d, col %d: %s" line col msg

let parse s =
  Result.map_error (fun e -> `Msg (error_message e)) (parse_located s)

let parse_exn s =
  match parse_located s with
  | Ok t -> t
  | Error e -> invalid_arg ("Intent.parse: " ^ error_message e)

(* ------------------------------------------------------------------ *)
(* Synthetic link attributes                                           *)

(* No real dataset carries per-link attributes, so the default
   assignment is a deterministic hash of the (unordered) endpoint ASNs:
   stable across runs, uncorrelated with topology generation seeds, and
   replaceable by any caller with real attribute data. *)
let default_attrs a b =
  let lo, hi =
    if Asn.compare a b <= 0 then (Asn.to_int a, Asn.to_int b)
    else (Asn.to_int b, Asn.to_int a)
  in
  let h = (lo * 1000003) lxor (hi * 8191) in
  let attrs = if h mod 3 = 0 then [ Monitored ] else [] in
  if h land 1 = 0 then Encrypted :: attrs else attrs
