(** Deterministic request/event streams for the resident service.

    A stream is the workload [panagree serve] drains: an ordered list of
    path queries interleaved with link churn events, either parsed from
    a text file or generated pseudo-randomly from a seed.

    {2 Text format}

    One item per line; blank lines and [#] comments are ignored:

    {v
    query AS12 AS77 ma-all
    intent AS12 AS77 metric=latency; k=4
    down peer AS4 AS5
    up transit AS1 AS9        # provider AS1, customer AS9
    v}

    Policies: [grc], [ma-all], [ma-direct], [ma-top:N].  An [intent]
    line's tail (everything after the destination) is an intent spec in
    the [Pan_intent.Intent] syntax.  {!parse} and {!to_string}
    round-trip, and {!parse} reports the offending line on malformed
    input — for a bad intent spec, also the 1-based column within the
    line. *)

open Pan_numerics
open Pan_topology

type link =
  | Peer of Asn.t * Asn.t
  | Transit of { provider : Asn.t; customer : Asn.t }

type query = { src : Asn.t; dst : Asn.t; policy : Path_enum.scenario }

type item =
  | Query of query
  | Intent_query of { src : Asn.t; dst : Asn.t; intent : Pan_intent.Intent.t }
  | Up of link
  | Down of link

type t = item list

val policy_label : Path_enum.scenario -> string
(** [grc] / [ma-all] / [ma-direct] / [ma-top:N]. *)

val policy_of_label : string -> Path_enum.scenario option

val item_to_string : item -> string

val to_string : t -> string
(** One line per item, newline-terminated. *)

val parse : string -> t
(** @raise Invalid_argument as ["Stream.parse: line %d: ..."] on
    malformed input. *)

val load : string -> t
(** {!parse} a file.  @raise Sys_error on I/O. *)

val generate :
  ?intent:Pan_intent.Intent.t ->
  rng:Rng.t ->
  topo:Compact.t ->
  requests:int ->
  churn:float ->
  unit ->
  t
(** [requests] items drawn deterministically from [rng]: each is a churn
    event with probability [churn] (clamped to [0, 1]), else a query
    with distinct random endpoints and a policy drawn uniformly from
    [grc] / [ma-all] / [ma-direct] / [ma-top:3].  With [intent], query
    items become {!Intent_query}s carrying that intent instead (the
    policy draw is skipped; churn and endpoint draws are unchanged).

    Events are always applicable in order: the generator tracks which of
    the topology's links are currently down, only downs an up link and
    only re-ups a downed one (links never present in [topo] are never
    added).  Queries use ASes present in the topology.
    @raise Invalid_argument if the topology has fewer than 2 ASes or no
    links while [churn > 0]. *)
