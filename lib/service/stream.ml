open Pan_numerics
open Pan_topology
module Intent = Pan_intent.Intent

type link =
  | Peer of Asn.t * Asn.t
  | Transit of { provider : Asn.t; customer : Asn.t }

type query = { src : Asn.t; dst : Asn.t; policy : Path_enum.scenario }

type item =
  | Query of query
  | Intent_query of { src : Asn.t; dst : Asn.t; intent : Intent.t }
  | Up of link
  | Down of link

type t = item list

let policy_label = function
  | Path_enum.Grc -> "grc"
  | Path_enum.Ma_all -> "ma-all"
  | Path_enum.Ma_direct_only -> "ma-direct"
  | Path_enum.Ma_top n -> Printf.sprintf "ma-top:%d" n

let policy_of_label = function
  | "grc" -> Some Path_enum.Grc
  | "ma-all" -> Some Path_enum.Ma_all
  | "ma-direct" -> Some Path_enum.Ma_direct_only
  | s -> (
      match String.index_opt s ':' with
      | Some i
        when String.sub s 0 i = "ma-top" ->
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          |> Option.map (fun n -> Path_enum.Ma_top n)
      | _ -> None)

let pp_asn x = Printf.sprintf "AS%d" (Asn.to_int x)

let link_to_string = function
  | Peer (a, b) -> Printf.sprintf "peer %s %s" (pp_asn a) (pp_asn b)
  | Transit { provider; customer } ->
      Printf.sprintf "transit %s %s" (pp_asn provider) (pp_asn customer)

let item_to_string = function
  | Query { src; dst; policy } ->
      Printf.sprintf "query %s %s %s" (pp_asn src) (pp_asn dst)
        (policy_label policy)
  | Intent_query { src; dst; intent } ->
      Printf.sprintf "intent %s %s %s" (pp_asn src) (pp_asn dst)
        (Intent.to_string intent)
  | Up l -> "up " ^ link_to_string l
  | Down l -> "down " ^ link_to_string l

let to_string items =
  String.concat "" (List.map (fun i -> item_to_string i ^ "\n") items)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

let err line fmt =
  Printf.ksprintf
    (fun msg -> invalid_arg (Printf.sprintf "Stream.parse: line %d: %s" line msg))
    fmt

let parse_asn line tok =
  let fail () = err line "expected an AS number like AS42, got %S" tok in
  if String.length tok < 3 || not (String.sub tok 0 2 = "AS") then fail ();
  match int_of_string_opt (String.sub tok 2 (String.length tok - 2)) with
  | Some n when n >= 0 -> Asn.of_int n
  | _ -> fail ()

let parse_link line = function
  | [ "peer"; a; b ] -> Peer (parse_asn line a, parse_asn line b)
  | [ "transit"; p; c ] ->
      Transit { provider = parse_asn line p; customer = parse_asn line c }
  | kind :: _ when kind <> "peer" && kind <> "transit" ->
      err line "unknown link kind %S (expected peer or transit)" kind
  | toks -> err line "expected <kind> <AS> <AS>, got %d token(s)" (List.length toks)

(* The intent verb keeps the raw line: its spec tail is free-form (it
   contains spaces and [;]), and parse errors from [Intent.parse_located]
   are re-anchored to 1-based columns of the stream line itself. *)
let parse_intent lineno l =
  let n = String.length l in
  let is_ws c = c = ' ' || c = '\t' || c = '\r' in
  let skip_ws i =
    let i = ref i in
    while !i < n && is_ws l.[!i] do
      incr i
    done;
    !i
  in
  let token i =
    let j = ref i in
    while !j < n && not (is_ws l.[!j]) do
      incr j
    done;
    (String.sub l i (!j - i), !j)
  in
  let i = skip_ws 0 in
  let verb, i = token i in
  assert (verb = "intent");
  let i = skip_ws i in
  let src, i = token i in
  let i = skip_ws i in
  let dst, i = token i in
  let spec_start = skip_ws i in
  let spec_stop =
    let j = ref n in
    while !j > spec_start && is_ws l.[!j - 1] do
      decr j
    done;
    !j
  in
  if src = "" || dst = "" || spec_stop = spec_start then
    err lineno "intent takes <src> <dst> <intent-spec>";
  let spec = String.sub l spec_start (spec_stop - spec_start) in
  match Intent.parse_located spec with
  | Ok intent ->
      Intent_query { src = parse_asn lineno src; dst = parse_asn lineno dst; intent }
  | Error (_, col, msg) ->
      err lineno "intent spec (col %d): %s" (spec_start + col) msg

let parse_line lineno l =
  let l =
    match String.index_opt l '#' with
    | Some i -> String.sub l 0 i
    | None -> l
  in
  match
    String.split_on_char ' ' (String.trim l)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> None
  | [ "query"; src; dst; policy ] -> (
      match policy_of_label policy with
      | Some p ->
          Some
            (Query
               { src = parse_asn lineno src; dst = parse_asn lineno dst; policy = p })
      | None ->
          err lineno
            "unknown policy %S (expected grc, ma-all, ma-direct or ma-top:N)"
            policy)
  | "query" :: toks ->
      err lineno "query takes <src> <dst> <policy>, got %d token(s)"
        (List.length toks)
  | "intent" :: _ -> Some (parse_intent lineno l)
  | "up" :: rest -> Some (Up (parse_link lineno rest))
  | "down" :: rest -> Some (Down (parse_link lineno rest))
  | verb :: _ ->
      err lineno "unknown item %S (expected query, intent, up or down)" verb

let parse s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> parse_line (i + 1) l)
  |> List.filter_map Fun.id

let load file = parse (In_channel.with_open_text file In_channel.input_all)

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)

(* Indexed link with live up/down state.  Picking an up link uses
   rejection sampling over the full link array — at realistic churn the
   downed fraction stays tiny, so the expected number of draws is ~1. *)
let generate ?intent ~rng ~topo ~requests ~churn () =
  let churn = Float.max 0.0 (Float.min 1.0 churn) in
  let n = Compact.num_ases topo in
  if n < 2 then
    invalid_arg "Stream.generate: topology needs at least 2 ASes";
  let links = ref [] in
  Compact.iter_peering_links topo (fun i j ->
      links := Peer (Compact.id topo i, Compact.id topo j) :: !links);
  Compact.iter_provider_customer_links topo (fun ~provider ~customer ->
      links :=
        Transit
          { provider = Compact.id topo provider;
            customer = Compact.id topo customer }
        :: !links);
  let links = Array.of_list (List.rev !links) in
  let n_links = Array.length links in
  if churn > 0.0 && n_links = 0 then
    invalid_arg "Stream.generate: topology has no links to churn";
  let up = Array.make n_links true in
  (* downed link indices, swap-removed on re-up *)
  let down = Array.make n_links 0 in
  let n_down = ref 0 in
  let pick_up () =
    let k = ref (Rng.int rng n_links) in
    while not up.(!k) do
      k := Rng.int rng n_links
    done;
    !k
  in
  let policies =
    [| Path_enum.Grc; Path_enum.Ma_all; Path_enum.Ma_direct_only;
       Path_enum.Ma_top 3 |]
  in
  let item _ =
    if churn > 0.0 && Rng.float rng < churn then
      if !n_down > 0 && (!n_down = n_links || Rng.bool rng) then (
        (* re-up a random downed link *)
        let slot = Rng.int rng !n_down in
        let k = down.(slot) in
        decr n_down;
        down.(slot) <- down.(!n_down);
        up.(k) <- true;
        Up links.(k))
      else
        let k = pick_up () in
        up.(k) <- false;
        down.(!n_down) <- k;
        incr n_down;
        Down links.(k)
    else
      let src = Rng.int rng n in
      let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
      let src = Compact.id topo src and dst = Compact.id topo dst in
      match intent with
      | None -> Query { src; dst; policy = Rng.choose rng policies }
      | Some intent -> Intent_query { src; dst; intent }
  in
  (* explicit recursion: List.init's evaluation order is unspecified,
     and item advances the rng *)
  let rec build k acc =
    if k = requests then List.rev acc else build (k + 1) (item k :: acc)
  in
  build 0 []
