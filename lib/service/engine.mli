(** Resident path-query engine: one frozen {!Pan_topology.Compact}
    topology, a per-pair memoized path store, and live link churn.

    The engine answers [(src, dst, policy)] queries — "how many length-3
    paths, and through which middle ASes, does [src] have to [dst] under
    this agreement scenario?" — from two memo layers:

    - a {e mid-sets memo} keyed by [(src, policy)], holding the expensive
      {!Pan_topology.Path_enum_compact.scenario_paths} enumeration;
    - a per-pair {e path store} keyed by [(src, dst, policy)], holding
      the rendered answer ([store_hits] / [store_misses] count here).

    On a {!event} the topology is updated and every store entry whose
    source could be affected is dropped.  For a single changed link
    [(a, b)], a source [x]'s scenario paths depend only on links at
    distance ≤ 1 from [x]'s first hops, so the affected sources are
    [{a, b} ∪ N(a) ∪ N(b)] (neighborhoods taken both before and after
    the flip) — everything else keeps its memo.  The churn-equivalence
    suite ([test/test_serve.ml]) checks this invalidation is not just
    sound but gives answers identical to a cold engine.

    Two {!mode}s update the topology: [Incremental] splices the CSR
    adjacency through {!Pan_topology.Compact.Delta} (the incremental
    freeze), [Refreeze] rebuilds it with a full
    {!Pan_topology.Compact.freeze} of the mutable mirror.  Both maintain
    the same answers; [Refreeze] is the correctness oracle the
    incremental path is tested against, byte-for-byte via
    {!Pan_topology.Compact.Snapshot.to_string}.

    When {!Pan_obs.Obs} is configured the engine records [serve.queries],
    [serve.store_hits], [serve.store_misses], [serve.events],
    [serve.invalidations] counters and a [serve.query] latency
    histogram. *)

open Pan_topology

type link =
  | Peer of int * int  (** endpoints as dense indices, either order *)
  | Transit of { provider : int; customer : int }

type event = Link_up of link | Link_down of link

type mode =
  | Incremental  (** CSR splice per event ({!Compact.Delta}) *)
  | Refreeze  (** full {!Compact.freeze} per event — the oracle *)

type stats = {
  queries : int;
  store_hits : int;
  store_misses : int;
  events : int;
  invalidated : int;  (** store entries dropped by churn, cumulative *)
}

type t

val create : ?mode:mode -> ?geo_seed:int -> Compact.t -> t
(** Start an engine on a frozen topology ([mode] defaults to
    [Incremental]).  The mutable {!Graph.t} mirror is rebuilt with
    {!Compact.thaw}, so snapshot-loaded topologies work unchanged.
    [geo_seed] (default 43) seeds the synthetic geo embedding of the
    intent metric environment; it is forced lazily on the first
    {!intent_query}, so engines serving only policy queries never build
    it. *)

val of_graph : ?mode:mode -> ?geo_seed:int -> Graph.t -> t
(** [create (Compact.freeze g)] with the mirror copied from [g]. *)

val mode : t -> mode

val topology : t -> Compact.t
(** The {e current} frozen view — a new value after every event. *)

val stats : t -> stats

val query : t -> src:int -> dst:int -> policy:Path_enum.scenario -> int list
(** Middle-AS indices of every length-3 path [src - mid - dst] available
    under [policy], ascending; for a fixed pair each mid is one path, so
    the path count is the list length.  Served from the store when
    possible.
    @raise Invalid_argument on an out-of-range index. *)

val query_uncached :
  t -> src:int -> dst:int -> policy:Path_enum.scenario -> int list
(** Recompute from the current topology, bypassing and not touching
    either memo layer — the equivalence baseline for the store. *)

val intent_query :
  t -> src:int -> dst:int -> Pan_intent.Intent.t -> Pan_intent.Candidates.result list
(** Ranked K-shortest candidates for an intent over the {e current}
    topology, memoized under [(src, dst, canonical spec)].  Scoring uses
    a metric environment pinned to the creation-time topology (synthetic
    geo embedding from [geo_seed], degree-gravity capacities from
    creation-time degrees; churn-added links fall back to endpoint
    midpoints and the same degree product), so cached answers are
    invalidated by path-set changes only: a link-down drops exactly the
    entries whose cached paths traverse the link, a link-up flushes the
    intent store.  Both count into [stats.invalidated].  Hits and misses
    share the policy store's counters.
    @raise Invalid_argument on an out-of-range index or [src = dst]. *)

val intent_query_uncached :
  t -> src:int -> dst:int -> Pan_intent.Intent.t -> Pan_intent.Candidates.result list
(** Recompute from the current topology, bypassing the intent store —
    the equivalence baseline for intent memo/invalidation. *)

val prefill :
  ?pool:Pan_runner.Pool.t ->
  ?retries:int ->
  ?deadline:float ->
  t ->
  (int * Path_enum.scenario) list ->
  unit
(** Compute the mid-sets memo entries for the distinct missing
    [(src, policy)] pairs, in first-occurrence order, through the
    supervised {!Pan_runner.Task.map} — the enumerations are pure over
    the immutable frozen view, so this is safe to parallelize while
    answers stay sequential.  Results are bit-identical for every pool
    size, including none. *)

val apply : t -> event -> int
(** Apply one churn event: mutate the mirror, update the frozen view
    (per {!mode}), drop affected memo entries.  Returns the number of
    path-store entries invalidated.  Equivalent to [apply_batch t [ev]]
    (and implemented as such).
    @raise Invalid_argument if the event is not applicable: link already
    present on [Link_up], absent (or of the other class) on [Link_down],
    out-of-range index, or self-link. *)

val apply_batch : t -> event list -> int
(** Apply N churn events with the sequential semantics of folding
    {!apply} left-to-right — later events see the effect of earlier
    ones, and the resulting topology and memo state are identical — but
    in one pass: one {!Compact.Delta.apply_batch} CSR splice
    ([Incremental]) or one {!Compact.freeze} ([Refreeze]) for the whole
    batch, and one memo-invalidation sweep over the union of affected
    sources.  The marketplace epoch loop applies each epoch's signed
    agreements this way.  Returns the total number of store entries
    invalidated.  Unlike the sequential fold, validation of the whole
    batch happens {e before} any mutation: on raise, the engine is
    unchanged.
    @raise Invalid_argument as {!apply}, against the state left by the
    earlier events of the batch. *)
