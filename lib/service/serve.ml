open Pan_topology
module Obs = Pan_obs.Obs

type outcome = {
  transcript : string;
  stats : Engine.stats;
  fingerprint : string;
}

let pp_as topo i = Printf.sprintf "AS%d" (Asn.to_int (Compact.id topo i))

let render_query topo ~src ~dst ~policy mids =
  let pair =
    Printf.sprintf "%s -> %s [%s]" (pp_as topo src) (pp_as topo dst)
      (Stream.policy_label policy)
  in
  match mids with
  | [] -> pair ^ ": no paths"
  | _ ->
      Printf.sprintf "%s: %d path%s via %s" pair (List.length mids)
        (if List.length mids = 1 then "" else "s")
        (String.concat ", " (List.map (pp_as topo) mids))

let render_intent_query topo ~src ~dst intent results =
  let pair =
    Printf.sprintf "%s -> %s [intent %s]" (pp_as topo src) (pp_as topo dst)
      (Pan_intent.Intent.to_string intent)
  in
  match results with
  | [] -> pair ^ ": no candidates"
  | _ ->
      let line (r : Pan_intent.Candidates.result) =
        Printf.sprintf "  %s (score %g, hops %d)"
          (String.concat " "
             (List.map (fun x -> Printf.sprintf "AS%d" (Asn.to_int x)) r.path))
          r.score r.hops
      in
      Printf.sprintf "%s: %d candidate%s\n%s" pair (List.length results)
        (if List.length results = 1 then "" else "s")
        (String.concat "\n" (List.map line results))

let render_event topo ev dropped =
  let verb, link =
    match ev with
    | Engine.Link_up l -> ("up", l)
    | Engine.Link_down l -> ("down", l)
  in
  let link_s =
    match link with
    | Engine.Peer (i, j) ->
        Printf.sprintf "peer %s -- %s" (pp_as topo i) (pp_as topo j)
    | Engine.Transit { provider; customer } ->
        Printf.sprintf "transit %s -> %s" (pp_as topo provider)
          (pp_as topo customer)
  in
  Printf.sprintf "link %s %s: invalidated %d store entr%s" verb link_s dropped
    (if dropped = 1 then "y" else "ies")

let index topo what x =
  match Compact.index_of topo x with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Serve.run: %s AS%d is not in the topology" what
           (Asn.to_int x))

let event_of_item topo = function
  | Stream.Up (Stream.Peer (a, b)) ->
      Engine.Link_up (Engine.Peer (index topo "endpoint" a, index topo "endpoint" b))
  | Stream.Down (Stream.Peer (a, b)) ->
      Engine.Link_down
        (Engine.Peer (index topo "endpoint" a, index topo "endpoint" b))
  | Stream.Up (Stream.Transit { provider; customer }) ->
      Engine.Link_up
        (Engine.Transit
           {
             provider = index topo "provider" provider;
             customer = index topo "customer" customer;
           })
  | Stream.Down (Stream.Transit { provider; customer }) ->
      Engine.Link_down
        (Engine.Transit
           {
             provider = index topo "provider" provider;
             customer = index topo "customer" customer;
           })
  | Stream.Query _ | Stream.Intent_query _ ->
      invalid_arg "Serve.event_of_item: a query is not a churn event"

let run ?pool ?retries ?deadline ?(oracle = false) ~mode ~topo stream =
  let engine = Engine.create ~mode topo in
  let shadow =
    if oracle then Some (Engine.create ~mode:Engine.Refreeze topo) else None
  in
  let buf = Buffer.create 4096 in
  Obs.with_span "serve.drain" (fun () ->
      (* Split off the longest prefix of queries, prefill their missing
         mid-sets in parallel, answer sequentially; events are barriers. *)
      let rec drain items =
        match items with
        | [] -> ()
        | (Stream.Query _ | Stream.Intent_query _) :: _ ->
            let rec split acc = function
              | ((Stream.Query _ | Stream.Intent_query _) as q) :: rest ->
                  split (q :: acc) rest
              | rest -> (List.rev acc, rest)
            in
            let batch, rest = split [] items in
            let t = Engine.topology engine in
            (* Only policy queries prefill mid-sets through the pool;
               intent answers are computed sequentially on the answering
               pass, so they are trivially identical at any pool size. *)
            let keys =
              List.filter_map
                (function
                  | Stream.Query q -> Some (index t "source" q.src, q.policy)
                  | _ -> None)
                batch
            in
            Engine.prefill ?pool ?retries ?deadline engine keys;
            List.iter
              (fun item ->
                match item with
                | Stream.Query { src; dst; policy } ->
                    let src = index t "source" src in
                    let dst = index t "destination" dst in
                    let mids = Engine.query engine ~src ~dst ~policy in
                    Buffer.add_string buf
                      (render_query t ~src ~dst ~policy mids);
                    Buffer.add_char buf '\n'
                | Stream.Intent_query { src; dst; intent } ->
                    let src = index t "source" src in
                    let dst = index t "destination" dst in
                    let results =
                      Engine.intent_query engine ~src ~dst intent
                    in
                    Buffer.add_string buf
                      (render_intent_query t ~src ~dst intent results);
                    Buffer.add_char buf '\n'
                | Stream.Up _ | Stream.Down _ -> assert false)
              batch;
            drain rest
        | ev :: rest ->
            let t = Engine.topology engine in
            let ev = event_of_item t ev in
            let dropped = Engine.apply engine ev in
            (match shadow with
            | None -> ()
            | Some oracle_engine ->
                ignore (Engine.apply oracle_engine ev);
                let a = Compact.Snapshot.to_string (Engine.topology engine) in
                let b =
                  Compact.Snapshot.to_string (Engine.topology oracle_engine)
                in
                if not (String.equal a b) then
                  failwith
                    "Serve.run: oracle divergence — incremental freeze does \
                     not match full re-freeze");
            Buffer.add_string buf (render_event t ev dropped);
            Buffer.add_char buf '\n';
            drain rest
      in
      drain stream);
  let transcript = Buffer.contents buf in
  {
    transcript;
    stats = Engine.stats engine;
    fingerprint = Digest.to_hex (Digest.string transcript);
  }
