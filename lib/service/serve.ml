open Pan_topology
module Obs = Pan_obs.Obs

type outcome = {
  transcript : string;
  stats : Engine.stats;
  fingerprint : string;
}

let pp_as topo i = Printf.sprintf "AS%d" (Asn.to_int (Compact.id topo i))

let render_query topo ~src ~dst ~policy mids =
  let pair =
    Printf.sprintf "%s -> %s [%s]" (pp_as topo src) (pp_as topo dst)
      (Stream.policy_label policy)
  in
  match mids with
  | [] -> pair ^ ": no paths"
  | _ ->
      Printf.sprintf "%s: %d path%s via %s" pair (List.length mids)
        (if List.length mids = 1 then "" else "s")
        (String.concat ", " (List.map (pp_as topo) mids))

let render_event topo ev dropped =
  let verb, link =
    match ev with
    | Engine.Link_up l -> ("up", l)
    | Engine.Link_down l -> ("down", l)
  in
  let link_s =
    match link with
    | Engine.Peer (i, j) ->
        Printf.sprintf "peer %s -- %s" (pp_as topo i) (pp_as topo j)
    | Engine.Transit { provider; customer } ->
        Printf.sprintf "transit %s -> %s" (pp_as topo provider)
          (pp_as topo customer)
  in
  Printf.sprintf "link %s %s: invalidated %d store entr%s" verb link_s dropped
    (if dropped = 1 then "y" else "ies")

let index topo what x =
  match Compact.index_of topo x with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Serve.run: %s AS%d is not in the topology" what
           (Asn.to_int x))

let event_of_item topo = function
  | Stream.Up (Stream.Peer (a, b)) ->
      Engine.Link_up (Engine.Peer (index topo "endpoint" a, index topo "endpoint" b))
  | Stream.Down (Stream.Peer (a, b)) ->
      Engine.Link_down
        (Engine.Peer (index topo "endpoint" a, index topo "endpoint" b))
  | Stream.Up (Stream.Transit { provider; customer }) ->
      Engine.Link_up
        (Engine.Transit
           {
             provider = index topo "provider" provider;
             customer = index topo "customer" customer;
           })
  | Stream.Down (Stream.Transit { provider; customer }) ->
      Engine.Link_down
        (Engine.Transit
           {
             provider = index topo "provider" provider;
             customer = index topo "customer" customer;
           })
  | Stream.Query _ ->
      invalid_arg "Serve.event_of_item: a query is not a churn event"

let run ?pool ?retries ?deadline ?(oracle = false) ~mode ~topo stream =
  let engine = Engine.create ~mode topo in
  let shadow =
    if oracle then Some (Engine.create ~mode:Engine.Refreeze topo) else None
  in
  let buf = Buffer.create 4096 in
  Obs.with_span "serve.drain" (fun () ->
      (* Split off the longest prefix of queries, prefill their missing
         mid-sets in parallel, answer sequentially; events are barriers. *)
      let rec drain items =
        match items with
        | [] -> ()
        | Stream.Query _ :: _ ->
            let rec split acc = function
              | Stream.Query q :: rest -> split (q :: acc) rest
              | rest -> (List.rev acc, rest)
            in
            let batch, rest = split [] items in
            let t = Engine.topology engine in
            let keys =
              List.map
                (fun (q : Stream.query) ->
                  (index t "source" q.src, q.policy))
                batch
            in
            Engine.prefill ?pool ?retries ?deadline engine keys;
            List.iter
              (fun { Stream.src; dst; policy } ->
                let src = index t "source" src in
                let dst = index t "destination" dst in
                let mids = Engine.query engine ~src ~dst ~policy in
                Buffer.add_string buf
                  (render_query t ~src ~dst ~policy mids);
                Buffer.add_char buf '\n')
              batch;
            drain rest
        | ev :: rest ->
            let t = Engine.topology engine in
            let ev = event_of_item t ev in
            let dropped = Engine.apply engine ev in
            (match shadow with
            | None -> ()
            | Some oracle_engine ->
                ignore (Engine.apply oracle_engine ev);
                let a = Compact.Snapshot.to_string (Engine.topology engine) in
                let b =
                  Compact.Snapshot.to_string (Engine.topology oracle_engine)
                in
                if not (String.equal a b) then
                  failwith
                    "Serve.run: oracle divergence — incremental freeze does \
                     not match full re-freeze");
            Buffer.add_string buf (render_event t ev dropped);
            Buffer.add_char buf '\n';
            drain rest
      in
      drain stream);
  let transcript = Buffer.contents buf in
  {
    transcript;
    stats = Engine.stats engine;
    fingerprint = Digest.to_hex (Digest.string transcript);
  }
