(** Drain a {!Stream} through an {!Engine} and render the transcript.

    The drain is segmented at churn events: each maximal run of
    consecutive queries (policy and intent alike) first
    {!Engine.prefill}s the distinct missing [(src, policy)] mid-sets of
    the policy queries through the supervised pool (pure work, safely
    parallel), then answers the whole run {e sequentially} against the
    memoized stores — intent answers never touch the pool or the fault
    harness.  The rendered transcript is therefore bit-identical for
    every pool size, with or without fault injection — the property
    [test/cli/serve.t], [test/cli/intent.t] and bench part 11 pin
    down.

    With [oracle:true] a second [Refreeze] engine shadows the primary:
    after every event the two frozen views are compared byte-for-byte
    ({!Pan_topology.Compact.Snapshot.to_string}) and a divergence raises
    [Failure] — the incremental freeze is never silently wrong in a
    resident process.

    The whole drain runs under a [serve.drain] {!Pan_obs.Obs} span. *)

open Pan_topology

type outcome = {
  transcript : string;  (** one rendered line per stream item *)
  stats : Engine.stats;
  fingerprint : string;  (** MD5 hex of [transcript] *)
}

val event_of_item : Compact.t -> Stream.item -> Engine.event
(** Translate a stream churn item (ASN endpoints) to an engine event
    (dense indices).  Indices are stable under churn — the AS set never
    changes — so translating against any frozen view of the same
    topology is equivalent.
    @raise Invalid_argument on a [Query] item or an AS not in the
    topology. *)

val render_query :
  Compact.t -> src:int -> dst:int -> policy:Path_enum.scenario -> int list ->
  string
(** ["AS2 -> AS7 [ma-all]: 2 paths via AS3, AS5"] (or ["no paths"]). *)

val render_intent_query :
  Compact.t ->
  src:int ->
  dst:int ->
  Pan_intent.Intent.t ->
  Pan_intent.Candidates.result list ->
  string
(** A header line ["AS2 -> AS7 [intent metric=latency; k=2]: 2
    candidates"] (or ["no candidates"]) followed by one indented
    ["  AS2 AS3 AS7 (score 3519.62, hops 3)"] line per ranked
    candidate. *)

val run :
  ?pool:Pan_runner.Pool.t ->
  ?retries:int ->
  ?deadline:float ->
  ?oracle:bool ->
  mode:Engine.mode ->
  topo:Compact.t ->
  Stream.t ->
  outcome
(** @raise Invalid_argument on a stream item naming an AS not in the
    topology or an event not applicable in sequence.
    @raise Failure on oracle divergence. *)
