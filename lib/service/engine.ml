open Pan_topology
module Obs = Pan_obs.Obs
module Intent = Pan_intent.Intent
module Metric = Pan_intent.Metric
module Candidates = Pan_intent.Candidates

type link =
  | Peer of int * int
  | Transit of { provider : int; customer : int }

type event = Link_up of link | Link_down of link
type mode = Incremental | Refreeze

type stats = {
  queries : int;
  store_hits : int;
  store_misses : int;
  events : int;
  invalidated : int;
}

(* Memo keys use the scenario constructors directly: Ma_top carries only
   an int, so structural hashing and equality are exact. *)
type mid_key = int * Path_enum.scenario
type store_key = int * int * Path_enum.scenario

(* Intent answers are memoized under the canonical spec text: two
   intents print identically iff they are equal values, so the string is
   an exact key with structural hashing. *)
type istore_key = int * int * string

type t = {
  mode : mode;
  mutable topo : Compact.t;
  mirror : Graph.t;
  mids : (mid_key, Path_enum_compact.mid_sets) Hashtbl.t;
  mid_keys : (int, Path_enum.scenario list ref) Hashtbl.t;
  store : (store_key, int list) Hashtbl.t;
  store_keys : (int, (int * Path_enum.scenario) list ref) Hashtbl.t;
  istore : (istore_key, Candidates.result list) Hashtbl.t;
  ilinks : (int * int, istore_key list ref) Hashtbl.t;
      (** normalized (lo, hi) dense link -> intent entries whose cached
          candidate paths traverse it *)
  ictx : Metric.ctx Lazy.t;
      (** metric environment pinned to the creation-time topology *)
  mutable queries : int;
  mutable store_hits : int;
  mutable store_misses : int;
  mutable events : int;
  mutable invalidated : int;
}

let mode t = t.mode
let topology t = t.topo

let stats t =
  {
    queries = t.queries;
    store_hits = t.store_hits;
    store_misses = t.store_misses;
    events = t.events;
    invalidated = t.invalidated;
  }

let default_geo_seed = 43

(* Metric environment for intent scoring, pinned to the creation-time
   frozen view: a deterministic synthetic geo embedding and degree-
   gravity capacities from creation-time degrees.  Pinning makes scores
   a static endowment — a link flipping elsewhere does not change
   another link's capacity — so churn invalidates cached intent answers
   only through the path {e set}, never through re-scoring (DESIGN
   §6g).  Links added by churn (absent from the embedding) fall back to
   the endpoint-midpoint interconnection location and the same
   degree-gravity product. *)
let intent_ctx ~geo_seed topo =
  lazy
    (let geo = Geo.of_compact ~seed:geo_seed topo in
     let as_location = Geo.as_location geo in
     let link_location a b =
       try Geo.link_location geo a b
       with Not_found ->
         let p = as_location a and q = as_location b in
         {
           Geo.lat = (p.Geo.lat +. q.Geo.lat) /. 2.0;
           lon = (p.Geo.lon +. q.Geo.lon) /. 2.0;
         }
     in
     let link_capacity a b =
       let i = Compact.index_of_exn topo a
       and j = Compact.index_of_exn topo b in
       float_of_int (Compact.degree topo i)
       *. float_of_int (Compact.degree topo j)
     in
     { Metric.as_location; link_location; link_capacity })

let make ?(geo_seed = default_geo_seed) mode topo mirror =
  {
    mode;
    topo;
    mirror;
    mids = Hashtbl.create 256;
    mid_keys = Hashtbl.create 256;
    store = Hashtbl.create 1024;
    store_keys = Hashtbl.create 256;
    istore = Hashtbl.create 256;
    ilinks = Hashtbl.create 256;
    ictx = intent_ctx ~geo_seed topo;
    queries = 0;
    store_hits = 0;
    store_misses = 0;
    events = 0;
    invalidated = 0;
  }

let create ?(mode = Incremental) ?geo_seed topo =
  make ?geo_seed mode topo (Compact.thaw topo)

let of_graph ?(mode = Incremental) ?geo_seed g =
  make ?geo_seed mode (Compact.freeze g) (Graph.copy g)

let err fmt = Printf.ksprintf invalid_arg ("Engine." ^^ fmt)

let check_index t i =
  if i < 0 || i >= Compact.num_ases t.topo then
    err "apply: index %d outside [0, %d)" i (Compact.num_ases t.topo)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let compute_mids topo src policy = Path_enum_compact.scenario_paths topo policy src

let push_key keys src k =
  match Hashtbl.find_opt keys src with
  | Some l -> l := k :: !l
  | None -> Hashtbl.add keys src (ref [ k ])

let mids_of t ~src ~policy =
  match Hashtbl.find_opt t.mids (src, policy) with
  | Some m -> m
  | None ->
      let m = compute_mids t.topo src policy in
      Hashtbl.replace t.mids (src, policy) m;
      push_key t.mid_keys src policy;
      m

let answer_of_mids mids dst =
  let acc = ref [] in
  Path_enum_compact.iter_sets
    (fun mid dsts -> if Bitset.mem dsts dst then acc := mid :: !acc)
    mids;
  List.rev !acc

let query_uncached t ~src ~dst ~policy =
  check_index t src;
  check_index t dst;
  answer_of_mids (compute_mids t.topo src policy) dst

let query t ~src ~dst ~policy =
  check_index t src;
  check_index t dst;
  t.queries <- t.queries + 1;
  Obs.incr "serve.queries";
  Obs.time "serve.query" (fun () ->
      match Hashtbl.find_opt t.store (src, dst, policy) with
      | Some a ->
          t.store_hits <- t.store_hits + 1;
          Obs.incr "serve.store_hits";
          a
      | None ->
          t.store_misses <- t.store_misses + 1;
          Obs.incr "serve.store_misses";
          let a = answer_of_mids (mids_of t ~src ~policy) dst in
          Hashtbl.replace t.store (src, dst, policy) a;
          push_key t.store_keys src (dst, policy);
          a)

let intent_query t ~src ~dst intent =
  check_index t src;
  check_index t dst;
  if src = dst then err "intent_query: src = dst (index %d)" src;
  t.queries <- t.queries + 1;
  Obs.incr "serve.queries";
  Obs.time "serve.query" (fun () ->
      let key = (src, dst, Intent.to_string intent) in
      match Hashtbl.find_opt t.istore key with
      | Some r ->
          t.store_hits <- t.store_hits + 1;
          Obs.incr "serve.store_hits";
          r
      | None ->
          t.store_misses <- t.store_misses + 1;
          Obs.incr "serve.store_misses";
          let metric = Lazy.force t.ictx in
          let results =
            Candidates.generate ~topo:t.topo ~metric intent
              ~src:(Compact.id t.topo src) ~dst:(Compact.id t.topo dst)
          in
          Hashtbl.replace t.istore key results;
          List.iter
            (fun (r : Candidates.result) ->
              let rec links = function
                | a :: (b :: _ as rest) ->
                    let i = Compact.index_of_exn t.topo a
                    and j = Compact.index_of_exn t.topo b in
                    let lk = if i < j then (i, j) else (j, i) in
                    (match Hashtbl.find_opt t.ilinks lk with
                    | Some l -> l := key :: !l
                    | None -> Hashtbl.add t.ilinks lk (ref [ key ]));
                    links rest
                | [ _ ] | [] -> ()
              in
              links r.Candidates.path)
            results;
          results)

let intent_query_uncached t ~src ~dst intent =
  check_index t src;
  check_index t dst;
  if src = dst then err "intent_query: src = dst (index %d)" src;
  Candidates.generate ~topo:t.topo ~metric:(Lazy.force t.ictx) intent
    ~src:(Compact.id t.topo src) ~dst:(Compact.id t.topo dst)

let prefill ?pool ?retries ?deadline t pairs =
  let missing = Hashtbl.create 64 in
  let order =
    List.filter
      (fun key ->
        if Hashtbl.mem t.mids key || Hashtbl.mem missing key then false
        else (
          Hashtbl.add missing key ();
          true))
      pairs
  in
  match order with
  | [] -> ()
  | _ ->
      let keys = Array.of_list order in
      let topo = t.topo in
      let results =
        Pan_runner.Task.map ?pool ?retries ?deadline ~n:(Array.length keys)
          ~f:(fun k ->
            let src, policy = keys.(k) in
            compute_mids topo src policy)
          ()
      in
      Array.iteri
        (fun k m ->
          let ((src, policy) as key) = keys.(k) in
          Hashtbl.replace t.mids key m;
          push_key t.mid_keys src policy)
        results

(* ------------------------------------------------------------------ *)
(* Churn                                                               *)

let pp_as t i = Printf.sprintf "AS%d" (Asn.to_int (Compact.id t.topo i))

let check_endpoints t i j =
  check_index t i;
  check_index t j;
  if i = j then err "apply: self-link on %s" (pp_as t i)

(* Per-pair link state during batch validation: later events of a batch
   must see the effect of earlier ones (the sequential semantics), so
   applicability is checked against the base topology shadowed by an
   overlay of normalized pairs already edited in the batch. *)
type lstate = Absent | Peered | Transit_pc of { provider : int }

let base_state t lo hi =
  if Compact.mem_peer t.topo lo hi then Peered
  else if Compact.mem_customer t.topo lo hi then Transit_pc { provider = lo }
  else if Compact.mem_customer t.topo hi lo then Transit_pc { provider = hi }
  else Absent

let check_applicable t overlay ev =
  let state i j =
    let lo, hi = if i < j then (i, j) else (j, i) in
    match Hashtbl.find_opt overlay (lo, hi) with
    | Some s -> s
    | None -> base_state t lo hi
  in
  let set i j s =
    let lo, hi = if i < j then (i, j) else (j, i) in
    Hashtbl.replace overlay (lo, hi) s
  in
  match ev with
  | Link_up (Peer (i, j)) | Link_up (Transit { provider = i; customer = j }) ->
      check_endpoints t i j;
      if state i j <> Absent then
        err "apply: %s and %s are already linked" (pp_as t i) (pp_as t j);
      set i j
        (match ev with
        | Link_up (Peer _) -> Peered
        | _ -> Transit_pc { provider = i })
  | Link_down (Peer (i, j)) ->
      check_endpoints t i j;
      if state i j <> Peered then
        err "apply: %s and %s are not peers" (pp_as t i) (pp_as t j);
      set i j Absent
  | Link_down (Transit { provider; customer }) ->
      check_endpoints t provider customer;
      if state provider customer <> Transit_pc { provider } then
        err "apply: %s is not a provider of %s" (pp_as t provider)
          (pp_as t customer);
      set provider customer Absent

let endpoints = function
  | Link_up (Peer (i, j)) | Link_down (Peer (i, j)) -> (i, j)
  | Link_up (Transit { provider; customer })
  | Link_down (Transit { provider; customer }) ->
      (provider, customer)

(* Sources whose scenario paths can differ after flipping link (a, b):
   {a, b} and both endpoints' neighborhoods, taken on the topology
   before AND after the flip.  See DESIGN §6f for the sufficiency
   argument; [apply_batch] unions these sets over the batch. *)
let drop_memos t affected =
  let dropped = ref 0 in
  Bitset.iter
    (fun src ->
      (match Hashtbl.find_opt t.mid_keys src with
      | None -> ()
      | Some policies ->
          List.iter (fun p -> Hashtbl.remove t.mids (src, p)) !policies;
          Hashtbl.remove t.mid_keys src);
      match Hashtbl.find_opt t.store_keys src with
      | None -> ()
      | Some keys ->
          List.iter
            (fun (dst, p) ->
              if Hashtbl.mem t.store (src, dst, p) then (
                Hashtbl.remove t.store (src, dst, p);
                incr dropped))
            !keys;
          Hashtbl.remove t.store_keys src)
    affected;
  !dropped

let mutate_mirror t ev =
  let asn i = Compact.id t.topo i in
  match ev with
  | Link_up (Peer (i, j)) -> Graph.add_peering t.mirror (asn i) (asn j)
  | Link_down (Peer (i, j)) -> Graph.remove_peering t.mirror (asn i) (asn j)
  | Link_up (Transit { provider; customer }) ->
      Graph.add_provider_customer t.mirror ~provider:(asn provider)
        ~customer:(asn customer)
  | Link_down (Transit { provider; customer }) ->
      Graph.remove_provider_customer t.mirror ~provider:(asn provider)
        ~customer:(asn customer)

let edit_of_event = function
  | Link_up (Peer (i, j)) -> Compact.Delta.Add_peering (i, j)
  | Link_down (Peer (i, j)) -> Compact.Delta.Remove_peering (i, j)
  | Link_up (Transit { provider; customer }) ->
      Compact.Delta.Add_provider_customer { provider; customer }
  | Link_down (Transit { provider; customer }) ->
      Compact.Delta.Remove_provider_customer { provider; customer }

(* Intent invalidation over the masked candidate store.  Link-down is
   surgical: removing a link only deletes paths, so a cached K-best set
   none of whose paths traverse the link is still the K-best — only the
   entries indexed under the downed link are dropped.  Link-up has no
   such argument (a new link can beat cached candidates anywhere), so
   it flushes the intent store.  Scores never go stale: the metric
   environment is pinned to the creation-time topology. *)
let drop_intents t ev =
  match ev with
  | Link_up _ ->
      let n = Hashtbl.length t.istore in
      Hashtbl.reset t.istore;
      Hashtbl.reset t.ilinks;
      n
  | Link_down _ -> (
      let a, b = endpoints ev in
      let lk = if a < b then (a, b) else (b, a) in
      match Hashtbl.find_opt t.ilinks lk with
      | None -> 0
      | Some keys ->
          let dropped = ref 0 in
          List.iter
            (fun k ->
              if Hashtbl.mem t.istore k then (
                Hashtbl.remove t.istore k;
                incr dropped))
            !keys;
          Hashtbl.remove t.ilinks lk;
          !dropped)

(* Batch intent invalidation: any link-up flushes the store (same
   argument as the single-event case — a new link can beat cached
   candidates anywhere), otherwise each downed link drops its indexed
   entries surgically. *)
let drop_intents_batch t evs =
  if List.exists (function Link_up _ -> true | Link_down _ -> false) evs then (
    let n = Hashtbl.length t.istore in
    Hashtbl.reset t.istore;
    Hashtbl.reset t.ilinks;
    n)
  else List.fold_left (fun acc ev -> acc + drop_intents t ev) 0 evs

let apply_batch t evs =
  match evs with
  | [] -> 0
  | _ ->
      (* Validate the whole batch first (sequential semantics via the
         overlay): on error nothing — mirror included — has mutated. *)
      let overlay = Hashtbl.create 16 in
      List.iter (check_applicable t overlay) evs;
      let before = t.topo in
      List.iter (mutate_mirror t) evs;
      let after =
        match t.mode with
        | Incremental ->
            Compact.Delta.apply_batch before (List.map edit_of_event evs)
        | Refreeze -> Compact.freeze t.mirror
      in
      t.topo <- after;
      (* Union of per-event affected sources.  Every source whose
         neighborhood changes at any intermediate step of the sequential
         fold is an edit endpoint itself, so the union over events of
         {a, b} ∪ N_before(a, b) ∪ N_after(a, b) — neighborhoods on the
         batch-boundary topologies only — equals the union the
         event-at-a-time fold would drop. *)
      let n = Compact.num_ases after in
      let affected = Bitset.create ~width:n in
      List.iter
        (fun ev ->
          let a, b = endpoints ev in
          Bitset.add affected a;
          Bitset.add affected b;
          let absorb topo =
            Compact.iter_neighbors topo a (Bitset.unsafe_add affected);
            Compact.iter_neighbors topo b (Bitset.unsafe_add affected)
          in
          absorb before;
          absorb after)
        evs;
      let dropped = drop_memos t affected + drop_intents_batch t evs in
      let n_events = List.length evs in
      t.events <- t.events + n_events;
      t.invalidated <- t.invalidated + dropped;
      Obs.incr ~by:n_events "serve.events";
      Obs.incr ~by:dropped "serve.invalidations";
      dropped

let apply t ev = apply_batch t [ ev ]
