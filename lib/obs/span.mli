(** Nestable trace spans.

    A {!collector} records every [with_span] call with its start time,
    duration, and nesting depth, in start order.  Spans are meant to mark
    the coarse phases of an experiment on the coordinating domain
    (chunk-level work is better served by {!Metrics} histograms); the
    collector is nonetheless mutex-guarded so stray recordings from
    worker domains cannot corrupt it.

    With a virtual {!Clock} that is never advanced, every span has start
    [0] and duration [0], making the exported trace byte-stable. *)

type t = private {
  name : string;
  depth : int;  (** 0 = top level *)
  start : float;  (** clock reading at entry *)
  mutable duration : float;
  mutable closed : bool;  (** [false] only while the span is running *)
}

type collector

val collector : Clock.t -> collector
val clock : collector -> Clock.t

val with_span : collector -> string -> (unit -> 'a) -> 'a
(** Run the function inside a new span nested under the currently open
    one.  The span is closed (duration recorded) even if the function
    raises. *)

val spans : collector -> t list
(** All recorded spans, in start order. *)

val pp_tree : Format.formatter -> t list -> unit
(** Human-readable indented tree, durations in seconds. *)

val pp_jsonl : Format.formatter -> t list -> unit
(** One JSON object per line:
    [{"name":…,"depth":…,"start":…,"duration":…}]. *)
