(* Machine-readable bench snapshots: one BENCH_<part>.json per bench
   part, canonical bytes (sorted keys, Jsonx floats) so reruns with
   identical results diff clean.  The parser below is deliberately
   minimal — just enough JSON to validate what we emit — so the
   observability layer keeps its zero-dependency rule. *)

type t = {
  part : string;
  wall_s : float;
  throughput : float;
  speedup : float;
  fingerprint : string;
  jobs : int;
  meta : (string * string) list;
}

let fingerprint_of_string s = Digest.to_hex (Digest.string s)

let valid_part p =
  p <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_')
       p

let make ~part ~wall_s ~throughput ~speedup ~fingerprint ~jobs ?(meta = []) ()
    =
  if not (valid_part part) then
    invalid_arg "Bench_snap.make: part must be non-empty [A-Za-z0-9_-]";
  { part; wall_s; throughput; speedup; fingerprint; jobs; meta }

let to_json t =
  let buf = Buffer.create 256 in
  let str s = Buffer.add_string buf (Printf.sprintf "\"%s\"" (Jsonx.escape s)) in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"fingerprint\": ";
  str t.fingerprint;
  Buffer.add_string buf (Printf.sprintf ",\n  \"jobs\": %d" t.jobs);
  Buffer.add_string buf ",\n  \"meta\": {";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      str k;
      Buffer.add_string buf ": ";
      str v)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) t.meta);
  Buffer.add_string buf "}";
  Buffer.add_string buf ",\n  \"part\": ";
  str t.part;
  Buffer.add_string buf
    (Printf.sprintf ",\n  \"speedup\": %s" (Jsonx.float t.speedup));
  Buffer.add_string buf
    (Printf.sprintf ",\n  \"throughput\": %s" (Jsonx.float t.throughput));
  Buffer.add_string buf
    (Printf.sprintf ",\n  \"wall_s\": %s" (Jsonx.float t.wall_s));
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let default_dir () =
  match Sys.getenv_opt "PANAGREE_BENCH_DIR" with
  | Some d when d <> "" -> d
  | _ -> "."

let path ?dir t =
  let dir = match dir with Some d -> d | None -> default_dir () in
  Filename.concat dir ("BENCH_" ^ t.part ^ ".json")

let write ?dir t =
  let p = path ?dir t in
  Out_channel.with_open_bin p (fun oc ->
      Out_channel.output_string oc (to_json t));
  p

(* --- minimal JSON --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("bad literal " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* emitted escapes only cover control chars; keep it simple *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else fail "non-ASCII \\u escape unsupported";
              pos := !pos + 4
          | _ -> fail "bad escape");
          incr pos;
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elems [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing bytes at offset %d" !pos)
    else Ok v
  with Bad msg -> Error msg

let of_json j =
  let ( let* ) = Result.bind in
  match j with
  | Obj fields ->
      let find k = List.assoc_opt k fields in
      let str k =
        match find k with
        | Some (Str s) -> Ok s
        | Some _ -> Error (Printf.sprintf "field %S is not a string" k)
        | None -> Error (Printf.sprintf "missing field %S" k)
      in
      let num k =
        match find k with
        | Some (Num f) -> Ok f
        | Some _ -> Error (Printf.sprintf "field %S is not a number" k)
        | None -> Error (Printf.sprintf "missing field %S" k)
      in
      let* part = str "part" in
      let* fingerprint = str "fingerprint" in
      let* wall_s = num "wall_s" in
      let* throughput = num "throughput" in
      let* speedup = num "speedup" in
      let* jobs = num "jobs" in
      let* meta =
        match find "meta" with
        | None -> Ok []
        | Some (Obj kvs) ->
            List.fold_left
              (fun acc (k, v) ->
                let* acc = acc in
                match v with
                | Str s -> Ok ((k, s) :: acc)
                | _ -> Error (Printf.sprintf "meta field %S is not a string" k))
              (Ok []) kvs
            |> Result.map List.rev
        | Some _ -> Error "field \"meta\" is not an object"
      in
      Ok
        {
          part;
          wall_s;
          throughput;
          speedup;
          fingerprint;
          jobs = int_of_float jobs;
          meta;
        }
  | _ -> Error "snapshot is not a JSON object"

let validate t =
  if not (valid_part t.part) then Error "invalid part name"
  else if String.length t.fingerprint <> 32
          || not
               (String.for_all
                  (fun c ->
                    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
                  t.fingerprint)
  then Error "fingerprint is not a 32-hex-digit MD5"
  else if Float.is_nan t.wall_s || t.wall_s < 0.0 then Error "negative wall_s"
  else if Float.is_nan t.throughput || t.throughput < 0.0 then
    Error "negative throughput"
  else if Float.is_nan t.speedup || t.speedup < 0.0 then
    Error "negative speedup"
  else if t.jobs < 1 then Error "jobs < 1"
  else Ok ()

let of_string s =
  let ( let* ) = Result.bind in
  let* j = parse s in
  let* t = of_json j in
  let* () = validate t in
  Ok t

let read path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error e -> Error e
