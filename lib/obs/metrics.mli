(** Named counters, high-water gauges, and log-bucketed duration
    histograms.

    A value of type {!t} is a single {e shard}: a plain, unsynchronized
    store meant to be written by exactly one domain.  Parallel code gives
    each domain its own shard (see {!Obs}) and combines them with
    {!merge}, which is {e commutative and associative} — every statistic
    is chosen so that the merged result is independent of shard count and
    merge order:

    - counters add;
    - gauges keep the maximum (high-water marks), both across shards and
      across repeated {!gauge} calls on one shard;
    - histograms add per-bucket counts (buckets are powers of two, so the
      bucket of an observation never depends on other observations).

    No floating-point sums are stored: everything merged is an integer
    count or a max, which is what makes [merge] exactly associative and
    snapshots byte-stable for any parallelism. *)

type t

val create : unit -> t
val incr : ?by:int -> t -> string -> unit
val gauge : t -> string -> float -> unit
(** High-water gauge: keeps the max of all values ever set. *)

val observe : t -> string -> float -> unit
(** Record one duration (seconds) into the named histogram. *)

val merge : t -> t -> t
(** Pure: neither argument is modified.  Commutative and associative,
    with {!create}[ ()] as the neutral element. *)

val is_empty : t -> bool
val equal : t -> t -> bool

(** {2 Log-bucketing}

    Bucket [i] covers durations in [[2{^i}, 2{^i+1})] seconds.
    Non-positive (and NaN) observations land in a dedicated underflow
    bucket, [+inf] in an overflow bucket — so a virtual clock that never
    advances puts every duration in the underflow bucket,
    deterministically. *)

val underflow_bucket : int
val overflow_bucket : int

val bucket_of : float -> int
val bucket_lower : int -> float
(** Lower bound of bucket [i] ([2.{^i}]; [0.] for the underflow bucket,
    [infinity] for the overflow bucket). *)

(** {2 Reading} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of (int * int) list
      (** (bucket index, count), sorted by bucket index, counts > 0. *)

val bindings : t -> (string * value) list
(** All metrics sorted by name (ties broken counter < gauge < histogram);
    the canonical order every report uses. *)

val counter : t -> string -> int
(** [0] if absent. *)

val gauge_value : t -> string -> float option
val histogram : t -> string -> (int * int) list
(** [[]] if absent. *)

val histogram_count : t -> string -> int
(** Total number of observations recorded under the name. *)
