let bucket_key b =
  if b = Metrics.underflow_bucket then "-inf"
  else if b = Metrics.overflow_bucket then "inf"
  else string_of_int b

let partition bindings =
  List.fold_left
    (fun (cs, gs, hs) (name, v) ->
      match (v : Metrics.value) with
      | Metrics.Counter n -> ((name, n) :: cs, gs, hs)
      | Metrics.Gauge g -> (cs, (name, g) :: gs, hs)
      | Metrics.Histogram h -> (cs, gs, (name, h) :: hs))
    ([], [], []) (List.rev bindings)

let pp_object fmt pp_entry entries =
  match entries with
  | [] -> Format.fprintf fmt "{}"
  | _ ->
      Format.fprintf fmt "{";
      List.iteri
        (fun i (name, v) ->
          if i > 0 then Format.fprintf fmt ",";
          Format.fprintf fmt "@.    \"%s\": " (Jsonx.escape name);
          pp_entry fmt v)
        entries;
      Format.fprintf fmt "@.  }"

let pp_hist_json fmt buckets =
  let count = List.fold_left (fun acc (_, c) -> acc + c) 0 buckets in
  Format.fprintf fmt "{\"count\": %d, \"buckets\": {" count;
  List.iteri
    (fun i (b, c) ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "\"%s\": %d" (bucket_key b) c)
    buckets;
  Format.fprintf fmt "}}"

let pp_metrics_json fmt m =
  let counters, gauges, hists = partition (Metrics.bindings m) in
  Format.fprintf fmt "{@.  \"counters\": ";
  pp_object fmt (fun fmt n -> Format.fprintf fmt "%d" n) counters;
  Format.fprintf fmt ",@.  \"gauges\": ";
  pp_object fmt (fun fmt g -> Format.fprintf fmt "%s" (Jsonx.float g)) gauges;
  Format.fprintf fmt ",@.  \"histograms\": ";
  pp_object fmt pp_hist_json hists;
  Format.fprintf fmt "@.}@."

let pp_metrics_table fmt m =
  let counters, gauges, hists = partition (Metrics.bindings m) in
  if counters <> [] then begin
    Format.fprintf fmt "# counters@.";
    List.iter
      (fun (name, n) -> Format.fprintf fmt "%-40s %12d@." name n)
      counters
  end;
  if gauges <> [] then begin
    Format.fprintf fmt "# gauges (high-water)@.";
    List.iter
      (fun (name, g) -> Format.fprintf fmt "%-40s %12s@." name (Jsonx.float g))
      gauges
  end;
  if hists <> [] then begin
    Format.fprintf fmt "# duration histograms (bucket = [2^i, 2^i+1) s)@.";
    List.iter
      (fun (name, buckets) ->
        let count = List.fold_left (fun acc (_, c) -> acc + c) 0 buckets in
        Format.fprintf fmt "%-40s %12d obs @," name count;
        List.iter
          (fun (b, c) -> Format.fprintf fmt " [%s]=%d" (bucket_key b) c)
          buckets;
        Format.fprintf fmt "@.")
      hists
  end

let pp_spans_jsonl = Span.pp_jsonl
let pp_span_tree = Span.pp_tree
