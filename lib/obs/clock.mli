(** Time sources for the observability layer.

    Two sources exist.  The {e real} source reads wall-clock time and
    enforces monotonicity (consecutive {!now} calls never go backwards,
    even across domains or under NTP adjustment).  The {e virtual} source
    is a plain number that only moves when {!advance} is called, so every
    duration computed from it is deterministic: tests and cram golden
    files select it to make metric snapshots bit-for-bit reproducible.

    All operations are domain-safe (lock-free, CAS-based). *)

type t

val real : unit -> t
(** Wall-clock source.  {!now} returns seconds since the Unix epoch,
    clamped to be non-decreasing across all domains sharing this value. *)

val virtual_ : ?start:float -> unit -> t
(** Deterministic source starting at [start] (default [0.]).  {!now}
    returns the current value; it changes only via {!advance}. *)

val is_virtual : t -> bool

val now : t -> float
(** Current time in seconds. *)

val advance : t -> float -> unit
(** [advance c dt] moves a virtual clock forward by [dt] seconds.
    @raise Invalid_argument on a real clock or if [dt < 0]. *)

val env_var : string
(** ["PANAGREE_VCLOCK"] — see {!of_env}. *)

val of_env : unit -> t
(** A real clock, unless {!env_var} is set in the environment, in which
    case a virtual clock starting at [float_of_string (getenv env_var)]
    (or [0.] when the value does not parse, e.g. ["1"] parses, [""] does
    not).  The CLI builds its clock through this, so cram tests export
    [PANAGREE_VCLOCK=0] to redact every timing to a deterministic [0]. *)
