type ctx = {
  clk : Clock.t;
  (* (domain id, shard) pairs; push-only, CAS-guarded.  Each shard is
     written by exactly one domain, so writes need no further locking. *)
  shards : (int * Metrics.t) list Atomic.t;
  collector : Span.collector;
}

let state : ctx option Atomic.t = Atomic.make None

let configure ?clock () =
  let clk = match clock with Some c -> c | None -> Clock.of_env () in
  Atomic.set state
    (Some { clk; shards = Atomic.make []; collector = Span.collector clk })

let disable () = Atomic.set state None
let enabled () = Atomic.get state <> None

let clock () =
  match Atomic.get state with None -> None | Some c -> Some c.clk

let rec shard ctx =
  let id = (Domain.self () :> int) in
  let shards = Atomic.get ctx.shards in
  match List.assoc_opt id shards with
  | Some m -> m
  | None ->
      let m = Metrics.create () in
      if Atomic.compare_and_set ctx.shards shards ((id, m) :: shards) then m
      else shard ctx

let incr ?by name =
  match Atomic.get state with
  | None -> ()
  | Some ctx -> Metrics.incr ?by (shard ctx) name

let gauge name v =
  match Atomic.get state with
  | None -> ()
  | Some ctx -> Metrics.gauge (shard ctx) name v

let observe name v =
  match Atomic.get state with
  | None -> ()
  | Some ctx -> Metrics.observe (shard ctx) name v

let time name f =
  match Atomic.get state with
  | None -> f ()
  | Some ctx ->
      let t0 = Clock.now ctx.clk in
      Fun.protect
        ~finally:(fun () ->
          Metrics.observe (shard ctx) name (Clock.now ctx.clk -. t0))
        f

let with_span name f =
  match Atomic.get state with
  | None -> f ()
  | Some ctx ->
      Span.with_span ctx.collector name (fun () -> time ("span." ^ name) f)

let metrics () =
  match Atomic.get state with
  | None -> Metrics.create ()
  | Some ctx ->
      (* Shards are merged in domain-id order for definiteness, though
         merge is order-independent anyway. *)
      Atomic.get ctx.shards
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.fold_left (fun acc (_, m) -> Metrics.merge acc m)
           (Metrics.create ())

let spans () =
  match Atomic.get state with
  | None -> []
  | Some ctx -> Span.spans ctx.collector
