(** Stable snapshots of a metrics store and a span trace.

    Every emitter iterates {!Metrics.bindings} (sorted by name) and
    formats floats canonically, so two runs that produced the same data
    produce the same bytes — the property the cram tests [cmp] on. *)

val pp_metrics_json : Format.formatter -> Metrics.t -> unit
(** Pretty-printed JSON object:
    [{"counters":{…},"gauges":{…},"histograms":{…}}], keys sorted.
    Histogram buckets are keyed by their exponent ([i] means
    [[2^i, 2^i+1)] seconds), with ["-inf"]/["inf"] for the
    underflow/overflow buckets. *)

val pp_metrics_table : Format.formatter -> Metrics.t -> unit
(** Human-readable aligned table of the same snapshot. *)

val pp_spans_jsonl : Format.formatter -> Span.t list -> unit
(** Re-export of {!Span.pp_jsonl}. *)

val pp_span_tree : Format.formatter -> Span.t list -> unit
(** Re-export of {!Span.pp_tree}. *)
