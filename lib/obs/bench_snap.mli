(** Machine-readable bench snapshots.

    Each bench part emits one [BENCH_<part>.json] capturing its
    wall-clock, throughput, speedup over the reference path, and an MD5
    fingerprint of the part's results.  Emission is canonical (sorted
    keys, ["%.9g"] floats), so a rerun with identical results produces
    identical bytes; the fingerprint lets CI assert that parallel and
    sequential runs computed the same thing.  A minimal parser/validator
    pair keeps the files honest without adding a JSON dependency. *)

type t = {
  part : string;  (** bench part name, [[A-Za-z0-9_-]+] *)
  wall_s : float;  (** wall-clock of the measured section, seconds *)
  throughput : float;  (** part-defined items per second *)
  speedup : float;  (** measured speedup over the reference/baseline *)
  fingerprint : string;  (** MD5 hex of the part's result summary *)
  jobs : int;  (** worker count the part ran with *)
  meta : (string * string) list;  (** extra string-valued context *)
}

val make :
  part:string ->
  wall_s:float ->
  throughput:float ->
  speedup:float ->
  fingerprint:string ->
  jobs:int ->
  ?meta:(string * string) list ->
  unit ->
  t
(** @raise Invalid_argument on a part name unusable in a filename. *)

val fingerprint_of_string : string -> string
(** MD5 of the argument, lowercase hex — the fingerprint convention. *)

val to_json : t -> string
(** Canonical JSON: equal snapshots are equal bytes. *)

val path : ?dir:string -> t -> string
(** [dir/BENCH_<part>.json]; [dir] defaults to [$PANAGREE_BENCH_DIR] or
    the current directory. *)

val write : ?dir:string -> t -> string
(** Write {!to_json} to {!path} and return the path. *)

(** A just-enough JSON representation for validating emitted files. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result

val of_json : json -> (t, string) result
(** Check the schema: required fields [part], [wall_s], [throughput],
    [speedup], [fingerprint], [jobs] with the right types. *)

val validate : t -> (unit, string) result
(** Value-level checks: sane part name, 32-hex-digit fingerprint,
    non-negative timings, [jobs >= 1]. *)

val of_string : string -> (t, string) result
(** [parse] + [of_json] + [validate]. *)

val read : string -> (t, string) result
(** {!of_string} on a file's contents; I/O errors become [Error]. *)
