type t = {
  name : string;
  depth : int;
  start : float;
  mutable duration : float;
  mutable closed : bool;
}

type collector = {
  clk : Clock.t;
  mutex : Mutex.t;
  mutable open_depth : int;
  mutable recorded : t list; (* reverse start order *)
}

let collector clk =
  { clk; mutex = Mutex.create (); open_depth = 0; recorded = [] }

let clock c = c.clk

let locked c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let with_span c name f =
  let sp =
    locked c (fun () ->
        let sp =
          {
            name;
            depth = c.open_depth;
            start = Clock.now c.clk;
            duration = 0.0;
            closed = false;
          }
        in
        c.open_depth <- c.open_depth + 1;
        c.recorded <- sp :: c.recorded;
        sp)
  in
  Fun.protect
    ~finally:(fun () ->
      locked c (fun () ->
          sp.duration <- Clock.now c.clk -. sp.start;
          sp.closed <- true;
          c.open_depth <- c.open_depth - 1))
    f

let spans c = locked c (fun () -> List.rev c.recorded)

let pp_tree fmt spans =
  List.iter
    (fun sp ->
      Format.fprintf fmt "%s%-*s %12.6fs@."
        (String.make (2 * sp.depth) ' ')
        (max 1 (36 - (2 * sp.depth)))
        sp.name sp.duration)
    spans

let pp_jsonl fmt spans =
  List.iter
    (fun sp ->
      Format.fprintf fmt
        "{\"name\":\"%s\",\"depth\":%d,\"start\":%s,\"duration\":%s}@."
        (Jsonx.escape sp.name) sp.depth (Jsonx.float sp.start)
        (Jsonx.float sp.duration))
    spans
