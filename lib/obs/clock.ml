type t =
  | Real of float Atomic.t (* last value handed out; never goes backwards *)
  | Virtual of float Atomic.t

let real () = Real (Atomic.make neg_infinity)
let virtual_ ?(start = 0.0) () = Virtual (Atomic.make start)
let is_virtual = function Real _ -> false | Virtual _ -> true

let rec real_now last =
  let prev = Atomic.get last in
  let t = Unix.gettimeofday () in
  let t = if t > prev then t else prev in
  if Atomic.compare_and_set last prev t then t else real_now last

let now = function Real last -> real_now last | Virtual v -> Atomic.get v

let rec atomic_add v dt =
  let prev = Atomic.get v in
  if not (Atomic.compare_and_set v prev (prev +. dt)) then atomic_add v dt

let advance t dt =
  match t with
  | Real _ -> invalid_arg "Clock.advance: real clock"
  | Virtual v ->
      if dt < 0.0 then invalid_arg "Clock.advance: negative step";
      atomic_add v dt

let env_var = "PANAGREE_VCLOCK"

let of_env () =
  match Sys.getenv_opt env_var with
  | None -> real ()
  | Some s ->
      let start =
        match float_of_string_opt (String.trim s) with
        | Some f -> f
        | None -> 0.0
      in
      virtual_ ~start ()
