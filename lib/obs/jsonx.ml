(* Minimal JSON emission helpers shared by Span and Report.  Hand-rolled
   so the observability layer adds no dependency; outputs are canonical
   (sorted keys, "%.9g" floats) so equal data is equal bytes. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float f =
  if f = infinity then "\"inf\""
  else if f = neg_infinity then "\"-inf\""
  else if Float.is_nan f then "\"nan\""
  else Printf.sprintf "%.9g" f
