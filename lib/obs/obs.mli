(** Ambient observability context.

    Instrumentation points throughout the code base (runner chunks,
    experiment phases) call into this module unconditionally.  While no
    context is configured — the default — every call is a no-op costing
    one atomic load, so instrumented hot loops run at full speed.  The
    CLI (or a test) turns collection on with {!configure} and reads the
    results back with {!metrics} / {!spans}.

    Metric updates are {e sharded per domain}: each domain lazily
    registers a private {!Metrics.t} shard (lock-free, CAS on a shared
    list), writes to it without any synchronization, and {!metrics}
    merges the shards.  Because {!Metrics.merge} is order-independent,
    the merged totals are identical for every pool size — the property
    [test/test_runner_obs.ml] pins down.

    Spans record on the calling domain; use them for coarse phases on the
    coordinating domain and counters/histograms inside parallel chunks. *)

val configure : ?clock:Clock.t -> unit -> unit
(** Install a fresh context (empty metrics, empty trace).  [clock]
    defaults to {!Clock.of_env}[ ()].  Replaces any previous context. *)

val disable : unit -> unit
(** Remove the context; subsequent calls are no-ops again. *)

val enabled : unit -> bool

val clock : unit -> Clock.t option
(** The configured clock, if any (tests advance a virtual one through
    this). *)

(** {2 Recording} — all no-ops when disabled *)

val incr : ?by:int -> string -> unit
val gauge : string -> float -> unit
val observe : string -> float -> unit

val time : string -> (unit -> 'a) -> 'a
(** Run the function and {!observe} its wall-clock duration under the
    given histogram name (also on exception). *)

val with_span : string -> (unit -> 'a) -> 'a
(** Record a {!Span} around the function and additionally {!observe} its
    duration under the histogram ["span." ^ name]. *)

(** {2 Reading} *)

val metrics : unit -> Metrics.t
(** Merged snapshot of all domain shards (empty when disabled). *)

val spans : unit -> Span.t list
(** Recorded spans in start order ([[]] when disabled). *)
