type t = {
  counters : (string, int) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  hists : (string, (int, int) Hashtbl.t) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 8;
  }

let incr ?(by = 1) t name =
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.counters name) in
  Hashtbl.replace t.counters name (prev + by)

let gauge t name v =
  (* NaN is dropped: max is not commutative under NaN, and merge must be. *)
  if Float.is_nan v then ()
  else
    match Hashtbl.find_opt t.gauges name with
    | Some prev when prev >= v -> ()
    | _ -> Hashtbl.replace t.gauges name v

let underflow_bucket = min_int
let overflow_bucket = max_int

let bucket_of v =
  if Float.is_nan v || v <= 0.0 then underflow_bucket
  else if v = infinity then overflow_bucket
  else
    (* frexp: v = m * 2^e with m in [0.5, 1), so 2^(e-1) <= v < 2^e. *)
    let _, e = Float.frexp v in
    e - 1

let bucket_lower i =
  if i = underflow_bucket then 0.0
  else if i = overflow_bucket then infinity
  else Float.ldexp 1.0 i

let hist_for t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.add t.hists name h;
      h

let observe t name v =
  let h = hist_for t name in
  let b = bucket_of v in
  Hashtbl.replace h b (1 + Option.value ~default:0 (Hashtbl.find_opt h b))

let merge a b =
  let t = create () in
  let add_counters src =
    Hashtbl.iter (fun name v -> incr ~by:v t name) src.counters
  in
  let add_gauges src = Hashtbl.iter (fun name v -> gauge t name v) src.gauges in
  let add_hists src =
    Hashtbl.iter
      (fun name h ->
        let dst = hist_for t name in
        Hashtbl.iter
          (fun bucket count ->
            Hashtbl.replace dst bucket
              (count + Option.value ~default:0 (Hashtbl.find_opt dst bucket)))
          h)
      src.hists
  in
  add_counters a; add_counters b;
  add_gauges a; add_gauges b;
  add_hists a; add_hists b;
  t

let is_empty t =
  Hashtbl.length t.counters = 0
  && Hashtbl.length t.gauges = 0
  && Hashtbl.length t.hists = 0

type value =
  | Counter of int
  | Gauge of float
  | Histogram of (int * int) list

let sorted_hist h =
  Hashtbl.fold (fun b c acc -> if c > 0 then (b, c) :: acc else acc) h []
  |> List.sort compare

let bindings t =
  let kind_rank = function Counter _ -> 0 | Gauge _ -> 1 | Histogram _ -> 2 in
  let all =
    Hashtbl.fold (fun n v acc -> (n, Counter v) :: acc) t.counters []
    |> Hashtbl.fold (fun n v acc -> (n, Gauge v) :: acc) t.gauges
    |> Hashtbl.fold (fun n h acc -> (n, Histogram (sorted_hist h)) :: acc)
         t.hists
  in
  List.sort
    (fun (n1, v1) (n2, v2) ->
      match String.compare n1 n2 with
      | 0 -> Stdlib.compare (kind_rank v1) (kind_rank v2)
      | c -> c)
    all

let equal a b = bindings a = bindings b
let counter t name = Option.value ~default:0 (Hashtbl.find_opt t.counters name)
let gauge_value t name = Hashtbl.find_opt t.gauges name

let histogram t name =
  match Hashtbl.find_opt t.hists name with
  | None -> []
  | Some h -> sorted_hist h

let histogram_count t name =
  List.fold_left (fun acc (_, c) -> acc + c) 0 (histogram t name)
