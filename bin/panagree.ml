(* Command-line driver: one subcommand per experiment of the paper
   (see DESIGN.md for the experiment index). *)

open Cmdliner
open Pan_topology
open Pan_experiments

let fmt = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)

let seed_arg =
  let doc = "Random seed (all experiments are deterministic given it)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

(* Bounded numeric parsers, shared by every subcommand so out-of-range
   values are rejected at parse time with one uniform wording (the
   messages are cram-pinned).  Rejecting 0 here matters: several knobs
   (--epochs, --max-candidates) would otherwise be accepted and silently
   produce an empty run. *)
let int_at_least lo =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= lo -> Ok n
    | Ok _ ->
        Error
          (`Msg
             (Printf.sprintf "invalid value '%s' (expected an integer >= %d)"
                s lo))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let positive_int = int_at_least 1
let nonneg_int = int_at_least 0

let pos_float =
  let parse s =
    match Arg.conv_parser Arg.float s with
    | Ok d when d > 0.0 -> Ok d
    | Ok _ ->
        Error
          (`Msg (Printf.sprintf "invalid value '%s' (expected a number > 0)" s))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.float)

let jobs_arg =
  let doc =
    "Worker domains for the parallel experiment engine.  Seeding is \
     chunk-deterministic, so the output is identical for any value \
     (including 1, the sequential path)."
  in
  Arg.(value & opt positive_int 1 & info [ "j"; "jobs" ] ~doc)

let with_jobs jobs f = Pan_runner.Pool.with_pool ~domains:jobs f

(* Supervision options, shared by every --jobs subcommand.  --faults is
   applied as a side effect of term evaluation (equivalent to setting
   PANAGREE_FAULTS), so the experiment code only sees retries/deadline. *)

type supervision = { retries : int; deadline : float option }

let retries_arg =
  let doc =
    "Retry each failed chunk up to $(docv) extra times.  Retried chunks \
     replay their deterministic RNG split, so a run that recovers from \
     (injected) faults is byte-identical to a fault-free run."
  in
  Arg.(value & opt nonneg_int 0 & info [ "retries" ] ~doc ~docv:"N")

let deadline_arg =
  let doc =
    "Abort the run once $(docv) seconds of wall clock have elapsed \
     (checked cooperatively at chunk boundaries; honors \
     PANAGREE_VCLOCK)."
  in
  Arg.(value & opt (some pos_float) None
       & info [ "deadline" ] ~doc ~docv:"SECONDS")

let faults_arg =
  let doc =
    "Inject deterministic faults at chunk boundaries.  $(docv) is \
     comma-separated key=value pairs: seed= (draw seed), rate= (failure \
     probability per chunk attempt), delay= (seconds), delay-rate=.  \
     Equivalent to setting the PANAGREE_FAULTS environment variable; \
     combine with --retries to exercise recovery."
  in
  let fault_conv =
    Arg.conv
      ( Pan_runner.Fault.parse,
        fun ppf s -> Format.pp_print_string ppf (Pan_runner.Fault.to_string s)
      )
  in
  Arg.(value & opt (some fault_conv) None & info [ "faults" ] ~doc ~docv:"SPEC")

let sup_term =
  let make retries deadline faults =
    Option.iter (fun spec -> Pan_runner.Fault.set (Some spec)) faults;
    { retries; deadline }
  in
  Term.(const make $ retries_arg $ deadline_arg $ faults_arg)

let metrics_arg =
  let doc =
    "After the run, write a metrics snapshot (stable sorted JSON: \
     counters, high-water gauges, log-bucketed duration histograms) to \
     $(docv); '-' writes to standard output.  Set the \
     PANAGREE_VCLOCK environment variable to replace the wall clock \
     with a deterministic virtual clock, making the snapshot \
     byte-identical across runs."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~doc ~docv:"FILE")

let trace_arg =
  let doc =
    "After the run, write the recorded trace spans as JSONL (one \
     span per line, in start order) to $(docv); '-' writes to \
     standard output."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let emit_to path pp =
  match path with
  | "-" ->
      pp fmt;
      Format.pp_print_flush fmt ()
  | p ->
      Out_channel.with_open_text p (fun oc ->
          let f = Format.formatter_of_out_channel oc in
          pp f;
          Format.pp_print_flush f ())

(* Observability is off (every probe a no-op) unless --metrics or --trace
   was given; then the ambient context is configured for the duration of
   the run and the requested snapshots are emitted afterwards — also when
   the run raises, so a crashed experiment still leaves its partial
   metrics behind. *)
let with_obs ~metrics ~trace f =
  match (metrics, trace) with
  | None, None -> f ()
  | _ ->
      Pan_obs.Obs.configure ();
      Fun.protect
        ~finally:(fun () ->
          let m = Pan_obs.Obs.metrics () in
          let spans = Pan_obs.Obs.spans () in
          Pan_obs.Obs.disable ();
          Option.iter
            (fun p -> emit_to p (fun f -> Pan_obs.Report.pp_metrics_json f m))
            metrics;
          Option.iter
            (fun p ->
              emit_to p (fun f -> Pan_obs.Report.pp_spans_jsonl f spans))
            trace)
        f

let sample_arg =
  let doc = "Number of sampled source ASes (the paper uses 500)." in
  Arg.(value & opt int 500 & info [ "sample-size" ] ~doc)

let caida_arg =
  let doc =
    "Load a real CAIDA as-rel2 file instead of generating a synthetic \
     topology."
  in
  Arg.(value & opt (some file) None & info [ "caida" ] ~doc)

let transit_arg =
  let doc = "Number of transit ASes in the synthetic topology." in
  Arg.(value & opt int Gen.default_params.Gen.n_transit
       & info [ "transit" ] ~doc)

let stub_arg =
  let doc = "Number of stub ASes in the synthetic topology." in
  Arg.(value & opt int Gen.default_params.Gen.n_stub & info [ "stubs" ] ~doc)

let topology ~caida ~transit ~stubs ~seed =
  match caida with
  | Some path ->
      let g = Caida.load path in
      Format.fprintf fmt "# loaded %s: %a@." path Graph.pp_stats g;
      g
  | None ->
      let params =
        { Gen.default_params with Gen.n_transit = transit; n_stub = stubs }
      in
      let g = Gen.graph (Gen.generate ~params ~seed ()) in
      Format.fprintf fmt "# synthetic topology (seed %d): %a@." seed
        Graph.pp_stats g;
      g

(* ------------------------------------------------------------------ *)
(* fig2                                                                *)

let fig2_cmd =
  let trials =
    Arg.(value & opt int 200
         & info [ "trials" ] ~doc:"Choice-set combinations per cardinality.")
  in
  let ws =
    Arg.(value & opt (list int) [ 2; 5; 10; 20; 35; 50; 75; 100 ]
         & info [ "ws" ] ~doc:"Choice-set cardinalities to sweep.")
  in
  let run seed jobs sup metrics trace trials ws =
    with_obs ~metrics ~trace @@ fun () ->
    with_jobs jobs (fun pool ->
        List.iter
          (fun s -> Fig2_pod.pp_series fmt s)
          (Fig2_pod.run_both ~pool ~retries:sup.retries ?deadline:sup.deadline
             ~ws ~trials ~seed ()))
  in
  Cmd.v
    (Cmd.info "fig2" ~doc:"Fig. 2: Price of Dishonesty vs. choice-set size.")
    Term.(
      const run $ seed_arg $ jobs_arg $ sup_term $ metrics_arg $ trace_arg
      $ trials $ ws)

(* ------------------------------------------------------------------ *)
(* fig3 / fig4 / summary (one diversity run feeds all three)           *)

let diversity_run ~pool ~sup caida transit stubs seed sample =
  let g = topology ~caida ~transit ~stubs ~seed in
  Diversity.analyze ~pool ~retries:sup.retries ?deadline:sup.deadline
    ~sample_size:sample ~seed:(seed + 1) g

let fig34_cmd =
  let run caida transit stubs seed jobs sup metrics trace sample =
    with_obs ~metrics ~trace @@ fun () ->
    with_jobs jobs (fun pool ->
        Diversity.pp_result fmt
          (diversity_run ~pool ~sup caida transit stubs seed sample))
  in
  Cmd.v
    (Cmd.info "fig3"
       ~doc:
         "Figs. 3 & 4 and the §VI-A aggregates: length-3 paths and nearby \
          destinations per MA-conclusion scenario.")
    Term.(
      const run $ caida_arg $ transit_arg $ stub_arg $ seed_arg $ jobs_arg
      $ sup_term $ metrics_arg $ trace_arg $ sample_arg)

let summary_cmd =
  let run caida transit stubs seed jobs sup metrics trace sample =
    with_obs ~metrics ~trace @@ fun () ->
    let result =
      with_jobs jobs (fun pool ->
          diversity_run ~pool ~sup caida transit stubs seed sample)
    in
    let agg = Diversity.aggregate_stats result in
    Format.fprintf fmt
      "additional length-3 paths per AS:      avg %.0f  max %d@.\
       additional nearby destinations per AS: avg %.0f  max %d@."
      agg.Diversity.avg_additional_paths agg.Diversity.max_additional_paths
      agg.Diversity.avg_additional_destinations
      agg.Diversity.max_additional_destinations
  in
  Cmd.v
    (Cmd.info "summary" ~doc:"§VI-A aggregate path-diversity statistics.")
    Term.(
      const run $ caida_arg $ transit_arg $ stub_arg $ seed_arg $ jobs_arg
      $ sup_term $ metrics_arg $ trace_arg $ sample_arg)

(* ------------------------------------------------------------------ *)
(* fig5 / fig6                                                         *)

let fig5_cmd =
  let run caida transit stubs seed jobs sup metrics trace sample =
    with_obs ~metrics ~trace @@ fun () ->
    with_jobs jobs (fun pool ->
        let g = topology ~caida ~transit ~stubs ~seed in
        Geodistance.pp fmt
          (Geodistance.run ~pool ~retries:sup.retries ?deadline:sup.deadline
             ~sample_size:sample ~seed:(seed + 1) g))
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Fig. 5: geodistance of MA-added paths.")
    Term.(
      const run $ caida_arg $ transit_arg $ stub_arg $ seed_arg $ jobs_arg
      $ sup_term $ metrics_arg $ trace_arg $ sample_arg)

let fig6_cmd =
  let run caida transit stubs seed jobs sup metrics trace sample =
    with_obs ~metrics ~trace @@ fun () ->
    with_jobs jobs (fun pool ->
        let g = topology ~caida ~transit ~stubs ~seed in
        Bandwidth_exp.pp fmt
          (Bandwidth_exp.run ~pool ~retries:sup.retries ?deadline:sup.deadline
             ~sample_size:sample ~seed:(seed + 1) g))
  in
  Cmd.v
    (Cmd.info "fig6"
       ~doc:"Fig. 6: bandwidth of MA-added paths (degree-gravity model).")
    Term.(
      const run $ caida_arg $ transit_arg $ stub_arg $ seed_arg $ jobs_arg
      $ sup_term $ metrics_arg $ trace_arg $ sample_arg)

(* ------------------------------------------------------------------ *)
(* gadgets / methods                                                   *)

let gadgets_cmd =
  let run seed = Gadget_exp.pp fmt (Gadget_exp.run ~seed ()) in
  Cmd.v
    (Cmd.info "gadgets"
       ~doc:"§II: BGP gadget dynamics vs. PAN forwarding stability.")
    Term.(const run $ seed_arg)

let methods_cmd =
  let n =
    Arg.(value & opt int 100
         & info [ "scenarios" ] ~doc:"Number of random scenarios.")
  in
  let run seed jobs sup metrics trace n =
    with_obs ~metrics ~trace @@ fun () ->
    with_jobs jobs (fun pool ->
        Methods_exp.pp fmt
          (Methods_exp.run ~pool ~retries:sup.retries ?deadline:sup.deadline
             ~scenarios:n ~seed ()))
  in
  Cmd.v
    (Cmd.info "methods"
       ~doc:"§IV-C: cash compensation vs. flow-volume targets.")
    Term.(
      const run $ seed_arg $ jobs_arg $ sup_term $ metrics_arg $ trace_arg $ n)

(* ------------------------------------------------------------------ *)
(* extensions: resilience / chained / export                           *)

let resilience_cmd =
  let pairs =
    Arg.(value & opt int 100
         & info [ "pairs" ] ~doc:"Random source-destination pairs to probe.")
  in
  let run caida transit stubs seed pairs =
    let g = topology ~caida ~transit ~stubs ~seed in
    Resilience.pp fmt (Resilience.run ~pairs ~seed:(seed + 1) g)
  in
  Cmd.v
    (Cmd.info "resilience"
       ~doc:
         "Extension E9: failover connectivity under link failures, with \
          and without MAs.")
    Term.(const run $ caida_arg $ transit_arg $ stub_arg $ seed_arg $ pairs)

let chained_cmd =
  let run caida transit stubs seed sample =
    let g = topology ~caida ~transit ~stubs ~seed in
    Chained_exp.pp fmt (Chained_exp.run ~sample_size:sample ~seed:(seed + 1) g)
  in
  Cmd.v
    (Cmd.info "chained"
       ~doc:
         "Extension E10: diversity gains from agreement-path extension \
          (§III-B3).")
    Term.(
      const run $ caida_arg $ transit_arg $ stub_arg $ seed_arg $ sample_arg)

let adoption_cmd =
  let run caida transit stubs seed sample =
    let g = topology ~caida ~transit ~stubs ~seed in
    Adoption.pp fmt (Adoption.run ~sample_size:sample ~seed:(seed + 1) g)
  in
  Cmd.v
    (Cmd.info "adoption"
       ~doc:
         "Extension E11: negotiate every MA economically (Eq. 10/11) and \
          measure diversity from the concluded agreements only.")
    Term.(
      const run $ caida_arg $ transit_arg $ stub_arg $ seed_arg $ sample_arg)

let fragility_cmd =
  let topologies =
    Arg.(value & opt int 8
         & info [ "topologies" ] ~doc:"Random topologies per density.")
  in
  let run seed topologies =
    Fragility_exp.pp fmt (Fragility_exp.run ~topologies ~seed ())
  in
  Cmd.v
    (Cmd.info "fragility"
       ~doc:
         "Extension E13: BGP convergence trouble vs. density of \
          GRC-violating agreements.")
    Term.(const run $ seed_arg $ topologies)

let intent_conv =
  Arg.conv ~docv:"SPEC" (Pan_intent.Intent.parse, Pan_intent.Intent.pp)

let snapshot_arg =
  let doc =
    "Load the frozen topology (and any geo/bandwidth sections) from a \
     versioned binary snapshot written by $(b,topology snapshot), \
     instead of generating or parsing one.  Stale or corrupt snapshots \
     are rejected with a diagnostic."
  in
  Arg.(value & opt (some file) None & info [ "snapshot" ] ~doc ~docv:"FILE")

let pp_bundle path (b : Snapshot.bundle) =
  Format.fprintf fmt "# loaded snapshot %s: %a@." path Compact.pp_stats
    b.Snapshot.topo;
  (match b.Snapshot.geo with
  | Some geo ->
      let as_rows, link_rows = Geo.bindings geo in
      Format.fprintf fmt "geo section: %d AS locations, %d link locations@."
        (List.length as_rows) (List.length link_rows)
  | None -> Format.fprintf fmt "geo section: absent@.");
  match b.Snapshot.bandwidth with
  | Some bw ->
      Format.fprintf fmt "bandwidth section: coefficient %g@."
        (Bandwidth.coefficient bw)
  | None -> Format.fprintf fmt "bandwidth section: absent@."

let topology_cmd =
  let show_run caida transit stubs seed metrics trace snapshot =
    with_obs ~metrics ~trace @@ fun () ->
    match snapshot with
    | Some path -> (
        match Snapshot.load path with
        | b -> pp_bundle path b
        | exception Invalid_argument msg ->
            Format.eprintf "panagree: %s@." msg;
            exit 1)
    | None ->
        let g = topology ~caida ~transit ~stubs ~seed in
        Format.fprintf fmt "%a@." Metrics.pp_summary (Metrics.summary g);
        Format.fprintf fmt "compact core: %a@." Compact.pp_stats
          (Compact.freeze g);
        let sizes = Metrics.cone_sizes g in
        let top =
          Asn.Map.bindings sizes
          |> List.sort (fun (_, s1) (_, s2) -> compare s2 s1)
          |> List.filteri (fun i _ -> i < 10)
        in
        Format.fprintf fmt "largest customer cones:@.";
        List.iter
          (fun (x, size) -> Format.fprintf fmt "  %a: %d ASes@." Asn.pp x size)
          top
  in
  let snapshot_cmd =
    let out =
      let doc = "Output snapshot file." in
      Arg.(value & opt string "topology.snap" & info [ "out" ] ~doc ~docv:"FILE")
    in
    let run caida transit stubs seed metrics trace out =
      with_obs ~metrics ~trace @@ fun () ->
      let g = topology ~caida ~transit ~stubs ~seed in
      let frozen = Compact.freeze g in
      (* The geo embedding consumes the RNG in frozen iteration order, so
         the snapshot is deterministic given the topology and seed. *)
      let geo = Geo.of_compact ~seed:(seed + 1) frozen in
      let bandwidth = Bandwidth.of_compact frozen in
      Snapshot.save out ~geo ~bandwidth frozen;
      let bytes =
        In_channel.with_open_bin out (fun ic ->
            Int64.to_int (In_channel.length ic))
      in
      Format.fprintf fmt
        "wrote %s (%d bytes): %a; geo + bandwidth sections included@." out
        bytes Compact.pp_stats frozen
    in
    Cmd.v
      (Cmd.info "snapshot"
         ~doc:
           "Freeze the topology and save it (with geo and bandwidth \
            tables) as a versioned, checksummed binary snapshot for \
            instant reload via $(b,--snapshot).")
      Term.(
        const run $ caida_arg $ transit_arg $ stub_arg $ seed_arg
        $ metrics_arg $ trace_arg $ out)
  in
  Cmd.group
    ~default:
      Term.(
        const show_run $ caida_arg $ transit_arg $ stub_arg $ seed_arg
        $ metrics_arg $ trace_arg $ snapshot_arg)
    (Cmd.info "topology"
       ~doc:"Structural metrics of the (synthetic or loaded) topology.")
    [ snapshot_cmd ]

let te_cmd =
  let n =
    Arg.(value & opt int 300
         & info [ "demands" ] ~doc:"Number of gravity-model demands.")
  in
  let k =
    Arg.(value & opt int 3 & info [ "k" ] ~doc:"Paths used by multipath.")
  in
  let run caida transit stubs seed n k =
    let g = topology ~caida ~transit ~stubs ~seed in
    Te_exp.pp fmt (Te_exp.run ~demands:n ~k ~seed:(seed + 1) g)
  in
  Cmd.v
    (Cmd.info "te"
       ~doc:
         "Extension E12: link utilization under GRC vs. MA multipath \
          traffic engineering.")
    Term.(
      const run $ caida_arg $ transit_arg $ stub_arg $ seed_arg $ n $ k)

let export_cmd =
  let out =
    Arg.(value & opt string "export"
         & info [ "out" ] ~doc:"Output directory for CSV files.")
  in
  let run caida transit stubs seed jobs sup metrics trace sample out =
    with_obs ~metrics ~trace @@ fun () ->
    with_jobs jobs @@ fun pool ->
    let retries = sup.retries and deadline = sup.deadline in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let file name = Filename.concat out name in
    let g = topology ~caida ~transit ~stubs ~seed in
    Export.topology ~path:(file "topology.as-rel2") g;
    Export.fig2 ~path:(file "fig2.csv")
      (Fig2_pod.run_both ~pool ~retries ?deadline ~trials:100 ~seed ());
    Export.diversity ~paths_csv:(file "fig3_paths.csv")
      ~dests_csv:(file "fig4_destinations.csv")
      (Diversity.analyze ~pool ~retries ?deadline ~sample_size:sample
         ~seed:(seed + 1) g);
    Export.pair_metric ~counts_csv:(file "fig5a_counts.csv")
      ~improvements_csv:(file "fig5b_reductions.csv")
      (Geodistance.run ~pool ~retries ?deadline ~sample_size:sample
         ~seed:(seed + 1) g);
    Export.pair_metric ~counts_csv:(file "fig6a_counts.csv")
      ~improvements_csv:(file "fig6b_increases.csv")
      (Bandwidth_exp.run ~pool ~retries ?deadline ~sample_size:sample
         ~seed:(seed + 1) g);
    Export.resilience ~path:(file "resilience.csv")
      (Resilience.run ~seed:(seed + 1) g);
    Export.chained ~path:(file "chained.csv")
      (Chained_exp.run ~sample_size:sample ~seed:(seed + 1) g);
    Export.adoption ~path:(file "adoption.csv")
      (Adoption.run ~sample_size:sample ~seed:(seed + 1) g);
    Export.te ~path:(file "te.csv") (Te_exp.run ~seed:(seed + 1) g);
    Export.fragility ~path:(file "fragility.csv")
      (Fragility_exp.run ~seed:(seed + 1) ());
    Format.fprintf fmt "wrote CSV series to %s/@." out
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Run every experiment and write the raw series as CSV files.")
    Term.(
      const run $ caida_arg $ transit_arg $ stub_arg $ seed_arg $ jobs_arg
      $ sup_term $ metrics_arg $ trace_arg $ sample_arg $ out)

(* ------------------------------------------------------------------ *)
(* serve: resident path-query service (lib/service)                    *)

let serve_cmd =
  let open Pan_service in
  let stream_arg =
    let doc =
      "Drain the request/event stream from $(docv) instead of generating \
       one.  Format, one item per line: 'query AS1 AS2 ma-all', 'down \
       peer AS1 AS2', 'up transit AS1 AS2' (transit is provider then \
       customer); policies are grc, ma-all, ma-direct, ma-top:N; '#' \
       starts a comment."
    in
    Arg.(value & opt (some file) None & info [ "stream" ] ~doc ~docv:"FILE")
  in
  let requests_arg =
    let doc = "Length of the generated stream (queries plus events)." in
    Arg.(value & opt int 200 & info [ "requests" ] ~doc ~docv:"N")
  in
  let churn_arg =
    let doc =
      "Probability that a generated stream item is a link up/down event \
       instead of a query."
    in
    Arg.(value & opt float 0.05 & info [ "churn" ] ~doc ~docv:"P")
  in
  let mode_arg =
    let doc =
      "Topology update strategy under churn: $(b,incremental) splices \
       the frozen CSR core per event (the incremental freeze), \
       $(b,refreeze) rebuilds it from scratch per event (the oracle \
       path)."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("incremental", Engine.Incremental);
               ("refreeze", Engine.Refreeze);
             ])
          Engine.Incremental
      & info [ "mode" ] ~doc)
  in
  let oracle_arg =
    let doc =
      "Shadow every event with a full re-freeze engine and fail loudly \
       if the incremental core ever diverges (frozen views are compared \
       byte-for-byte)."
    in
    Arg.(value & flag & info [ "oracle" ] ~doc)
  in
  let intent_arg =
    let doc =
      "Generate intent queries instead of policy queries: every query \
       item of the generated stream carries this intent spec (syntax as \
       in $(b,panagree paths --intent); e.g. 'metric=latency; k=4').  \
       Ignored when $(b,--stream) supplies the stream."
    in
    Arg.(
      value & opt (some intent_conv) None & info [ "intent" ] ~doc ~docv:"SPEC")
  in
  let run caida transit stubs seed jobs sup metrics trace snapshot stream
      intent requests churn mode oracle =
    with_obs ~metrics ~trace @@ fun () ->
    match
      let topo =
        match snapshot with
        | Some path ->
            let b = Snapshot.load path in
            Format.fprintf fmt "# loaded snapshot %s: %a@." path
              Compact.pp_stats b.Snapshot.topo;
            b.Snapshot.topo
        | None -> Compact.freeze (topology ~caida ~transit ~stubs ~seed)
      in
      let items =
        match stream with
        | Some path ->
            let s = Stream.load path in
            Format.fprintf fmt "# stream %s: %d items@." path (List.length s);
            s
        | None ->
            let rng = Pan_numerics.Rng.create (seed + 2) in
            let s = Stream.generate ?intent ~rng ~topo ~requests ~churn () in
            Format.fprintf fmt "# generated stream (seed %d): %d items, \
                               churn %g@."
              (seed + 2) requests churn;
            s
      in
      with_jobs jobs (fun pool ->
          Serve.run ~pool ~retries:sup.retries ?deadline:sup.deadline ~oracle
            ~mode ~topo items)
    with
    | outcome ->
        Format.fprintf fmt "%s" outcome.Serve.transcript;
        let s = outcome.Serve.stats in
        Format.fprintf fmt
          "# served %d queries (%d store hits, %d misses), %d events, %d \
           invalidations@."
          s.Engine.queries s.Engine.store_hits s.Engine.store_misses
          s.Engine.events s.Engine.invalidated;
        Format.fprintf fmt "# transcript fingerprint %s@."
          outcome.Serve.fingerprint
    | exception Invalid_argument msg ->
        Format.eprintf "panagree: %s@." msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Resident path-query service: answer (src, dst, policy) queries \
          from a per-pair memoized store while draining link churn over \
          the incrementally-updated frozen core.")
    Term.(
      const run $ caida_arg $ transit_arg $ stub_arg $ seed_arg $ jobs_arg
      $ sup_term $ metrics_arg $ trace_arg $ snapshot_arg $ stream_arg
      $ intent_arg $ requests_arg $ churn_arg $ mode_arg $ oracle_arg)

(* ------------------------------------------------------------------ *)
(* market: concurrent MA negotiation marketplace (lib/market)          *)

let market_cmd =
  let open Pan_market in
  let epochs_arg =
    let doc =
      "Marketplace epochs: each epoch enumerates MA candidates over the \
       current frozen core, negotiates them concurrently, and splices the \
       signed agreements back in, reshaping the next epoch's candidate \
       set.  Stops early when an epoch signs nothing."
    in
    Arg.(value & opt positive_int Market.default.Market.epochs
         & info [ "epochs" ] ~doc ~docv:"N")
  in
  let w_arg =
    let doc = "Choice-set cardinality W of each BOSCO negotiation." in
    Arg.(value & opt positive_int Market.default.Market.w
         & info [ "w" ] ~doc ~docv:"W")
  in
  let demands_arg =
    let doc = "Traffic demands per direction in each candidate scenario." in
    Arg.(value & opt positive_int Market.default.Market.max_demands
         & info [ "demands" ] ~doc ~docv:"N")
  in
  let min_gain_arg =
    let doc =
      "Minimum destinations each side must gain for a pair to be a \
       candidate."
    in
    Arg.(value & opt positive_int Market.default.Market.min_gain
         & info [ "min-gain" ] ~doc ~docv:"N")
  in
  let max_candidates_arg =
    let doc = "Candidate pairs negotiated per epoch (highest gain first)." in
    Arg.(value & opt positive_int Market.default.Market.max_candidates
         & info [ "max-candidates" ] ~doc ~docv:"N")
  in
  let chunk_arg =
    let doc =
      "Negotiations per scheduled chunk.  Results are chunk-deterministic: \
       identical for every chunk size and every --jobs value."
    in
    Arg.(value & opt positive_int Market.default.Market.chunk
         & info [ "chunk" ] ~doc ~docv:"N")
  in
  let mechanism_arg =
    let doc =
      "Qualification mechanism: $(b,bosco) negotiates every enumerated \
       candidate pair-by-pair (the default), $(b,nash-peering) first runs \
       the global-bargaining qualifier and negotiates only pairs offering \
       both endpoints a competitive share of their coalition value, \
       $(b,both) runs the two qualifiers on a shared epoch snapshot and \
       identical candidate streams, reporting a per-epoch welfare / \
       agreement-count / Price-of-Dishonesty comparison."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("bosco", Market.Bosco);
               ("nash-peering", Market.Nash_peering);
               ("both", Market.Both);
             ])
          Market.Bosco
      & info [ "mechanism" ] ~doc ~docv:"MECH")
  in
  let oracle_arg =
    let doc =
      "After each epoch's batch splice, re-freeze the mutated graph from \
       scratch and compare byte-for-byte with the incrementally-spliced \
       core."
    in
    Arg.(value & flag & info [ "oracle" ] ~doc)
  in
  let run caida transit stubs seed jobs sup metrics trace snapshot epochs w
      demands min_gain max_candidates chunk mechanism oracle =
    with_obs ~metrics ~trace @@ fun () ->
    match
      let g =
        match snapshot with
        | Some path ->
            let b = Snapshot.load path in
            Format.fprintf fmt "# loaded snapshot %s: %a@." path
              Compact.pp_stats b.Snapshot.topo;
            Compact.thaw b.Snapshot.topo
        | None -> topology ~caida ~transit ~stubs ~seed
      in
      let config =
        {
          Market.epochs;
          w;
          max_demands = demands;
          min_gain;
          max_candidates;
          chunk;
          seed;
        }
      in
      with_jobs jobs (fun pool ->
          Market.run ~pool ~retries:sup.retries ?deadline:sup.deadline ~oracle
            ~mechanism config g)
    with
    | result -> Market.pp fmt result
    | exception Invalid_argument msg ->
        Format.eprintf "panagree: %s@." msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "market"
       ~doc:
         "MA negotiation marketplace: enumerate viable candidate pairs \
          over the frozen core, drive their BOSCO negotiations \
          concurrently (chunk-deterministic), splice signed agreements \
          back into the core, and repeat for --epochs rounds.")
    Term.(
      const run $ caida_arg $ transit_arg $ stub_arg $ seed_arg $ jobs_arg
      $ sup_term $ metrics_arg $ trace_arg $ snapshot_arg $ epochs_arg $ w_arg
      $ demands_arg $ min_gain_arg $ max_candidates_arg $ chunk_arg
      $ mechanism_arg $ oracle_arg)

(* ------------------------------------------------------------------ *)
(* paths                                                               *)

let paths_cmd =
  let open Pan_service in
  let src_arg =
    let doc = "Source AS number." in
    Arg.(required & pos 0 (some int) None & info [] ~doc ~docv:"SRC")
  in
  let dst_arg =
    let doc = "Destination AS number." in
    Arg.(required & pos 1 (some int) None & info [] ~doc ~docv:"DST")
  in
  let intent_arg =
    let doc =
      "Path intent: a ';'-separated list of clauses.  'metric=' takes \
       '+'-joined weighted components (latency, nlatency, bandwidth, \
       nbandwidth, hops; e.g. 'metric=2*nlatency+nbandwidth'); 'k=N' \
       bounds the candidate count; optional clauses: 'max-hops=N', \
       'exclude-as=AS1,AS2', 'exclude-link=AS1-AS2', \
       'geo-fence=lat,lon,radius-km', 'require=encrypted,monitored'."
    in
    Arg.(
      value
      & opt intent_conv Pan_intent.Intent.default
      & info [ "intent" ] ~doc ~docv:"SPEC")
  in
  let probe_arg =
    let doc =
      "Probe the ranked candidates in order (failing over past links \
       downed by the active fault spec, if any) and report the selected \
       path."
    in
    Arg.(value & flag & info [ "probe" ] ~doc)
  in
  let run caida transit stubs seed metrics trace snapshot faults src dst
      intent probe =
    Option.iter (fun spec -> Pan_runner.Fault.set (Some spec)) faults;
    with_obs ~metrics ~trace @@ fun () ->
    match
      let topo =
        match snapshot with
        | Some path ->
            let b = Snapshot.load path in
            Format.fprintf fmt "# loaded snapshot %s: %a@." path
              Compact.pp_stats b.Snapshot.topo;
            b.Snapshot.topo
        | None -> Compact.freeze (topology ~caida ~transit ~stubs ~seed)
      in
      let lookup label x =
        match Compact.index_of topo (Asn.of_int x) with
        | Some i -> i
        | None ->
            invalid_arg
              (Printf.sprintf "paths: %s AS%d is not in the topology" label x)
      in
      let src = lookup "source" src and dst = lookup "destination" dst in
      (* The engine's intent environment — the same scores [serve]
         renders for the same seed. *)
      let engine = Engine.create topo in
      let results = Engine.intent_query engine ~src ~dst intent in
      (topo, src, dst, results)
    with
    | topo, src, dst, results ->
        Format.fprintf fmt "%s@."
          (Serve.render_intent_query topo ~src ~dst intent results);
        if probe then begin
          let open Pan_intent in
          let candidates =
            List.map (fun r -> r.Candidates.path) results
          in
          let o = Probe.run ~topo candidates in
          List.iteri
            (fun i (a : Probe.attempt) ->
              match a.failed_link with
              | Some (x, y) ->
                  Format.fprintf fmt "probe %d: %s failed (link %a-%a down)@."
                    (i + 1)
                    (String.concat " "
                       (List.map (fun x -> Format.asprintf "%a" Asn.pp x)
                          a.path))
                    Asn.pp x Asn.pp y
              | None ->
                  Format.fprintf fmt "probe %d: %s ok@." (i + 1)
                    (String.concat " "
                       (List.map (fun x -> Format.asprintf "%a" Asn.pp x)
                          a.path)))
            o.Probe.attempts;
          match o.Probe.selected with
          | Some path ->
              Format.fprintf fmt "selected: %s@."
                (String.concat " "
                   (List.map (fun x -> Format.asprintf "%a" Asn.pp x) path))
          | None -> Format.fprintf fmt "selected: none (all candidates down)@."
        end
    | exception Invalid_argument msg ->
        Format.eprintf "panagree: %s@." msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "paths"
       ~doc:
         "Rank K-shortest-path candidates between two ASes under a path \
          intent (composite metric, hard constraints, candidate budget) \
          over the frozen compact core; optionally probe them with \
          failover.")
    Term.(
      const run $ caida_arg $ transit_arg $ stub_arg $ seed_arg $ metrics_arg
      $ trace_arg $ snapshot_arg $ faults_arg $ src_arg $ dst_arg $ intent_arg
      $ probe_arg)

(* ------------------------------------------------------------------ *)
(* validate-bench                                                      *)

let validate_bench_cmd =
  let files =
    let doc = "BENCH_<part>.json files to validate." in
    Arg.(non_empty & pos_all string [] & info [] ~doc ~docv:"FILE")
  in
  let run files =
    let ok =
      List.fold_left
        (fun ok file ->
          match Pan_obs.Bench_snap.read file with
          | Ok snap ->
              Format.fprintf fmt "%s: ok (part %s, fingerprint %s)@." file
                snap.Pan_obs.Bench_snap.part
                snap.Pan_obs.Bench_snap.fingerprint;
              ok
          | Error e ->
              Format.eprintf "%s: INVALID: %s@." file e;
              false)
        true files
    in
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "validate-bench"
       ~doc:
         "Parse and schema-check machine-readable BENCH_<part>.json \
          snapshots emitted by the bench harness; exits non-zero on any \
          malformed file.")
    Term.(const run $ files)

(* ------------------------------------------------------------------ *)
(* all                                                                 *)

let all_cmd =
  let run seed jobs sup metrics trace =
    with_obs ~metrics ~trace @@ fun () ->
    with_jobs jobs @@ fun pool ->
    let retries = sup.retries and deadline = sup.deadline in
    Format.fprintf fmt "=== E7 gadgets ===@.";
    Gadget_exp.pp fmt (Gadget_exp.run ~seed ());
    Format.fprintf fmt "@.=== E8 methods ===@.";
    Methods_exp.pp fmt
      (Methods_exp.run ~pool ~retries ?deadline ~scenarios:50 ~seed ());
    Format.fprintf fmt "@.=== E1 fig2 (reduced) ===@.";
    List.iter
      (fun s -> Fig2_pod.pp_series fmt s)
      (Fig2_pod.run_both ~pool ~retries ?deadline ~ws:[ 2; 10; 50 ] ~trials:50
         ~seed ());
    Format.fprintf fmt "@.=== E2/E3/E6 diversity ===@.";
    let g = topology ~caida:None ~transit:200 ~stubs:1000 ~seed in
    Diversity.pp_result fmt
      (Diversity.analyze ~pool ~retries ?deadline ~sample_size:300 ~seed g);
    Format.fprintf fmt "@.=== E4 fig5 ===@.";
    Geodistance.pp fmt
      (Geodistance.run ~pool ~retries ?deadline ~sample_size:300 ~seed g);
    Format.fprintf fmt "@.=== E5 fig6 ===@.";
    Bandwidth_exp.pp fmt
      (Bandwidth_exp.run ~pool ~retries ?deadline ~sample_size:300 ~seed g);
    Format.fprintf fmt "@.=== E9 resilience (extension) ===@.";
    Resilience.pp fmt (Resilience.run ~pairs:60 ~seed g);
    Format.fprintf fmt "@.=== E10 chained agreements (extension) ===@.";
    Chained_exp.pp fmt (Chained_exp.run ~sample_size:150 ~seed g)
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment at reduced scale.")
    Term.(const run $ seed_arg $ jobs_arg $ sup_term $ metrics_arg $ trace_arg)

let () =
  let info =
    Cmd.info "panagree" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Enabling Novel Interconnection Agreements with \
         Path-Aware Networking Architectures' (DSN 2021)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig2_cmd;
            fig34_cmd;
            summary_cmd;
            fig5_cmd;
            fig6_cmd;
            gadgets_cmd;
            methods_cmd;
            resilience_cmd;
            chained_cmd;
            adoption_cmd;
            te_cmd;
            fragility_cmd;
            topology_cmd;
            serve_cmd;
            market_cmd;
            paths_cmd;
            validate_bench_cmd;
            export_cmd;
            all_cmd;
          ]))
